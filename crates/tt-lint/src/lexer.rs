//! A minimal Rust lexer for lint matching.
//!
//! The build environment vendors no `syn`, so tt-lint works the way
//! rustc's own `tidy` tool does: it strips comments, string literals,
//! and char literals out of the source (preserving line structure),
//! then pattern-matches the remaining *code* text. Along the way it
//! records the three pieces of structure the lints need:
//!
//! - `// tt-lint: allow(<lint>) — <why>` directives and which code line
//!   each one governs,
//! - the line spans of `#[cfg(test)]`-gated items (skipped by every
//!   lint — tests may use wall clocks, files, and `unwrap` freely),
//! - the line spans of `impl Machine for …` blocks (the effect-boundary
//!   lint only fires inside them).

/// One source line with literals and comments blanked out.
#[derive(Debug, Clone)]
pub struct CodeLine {
    /// 1-based line number in the original file.
    pub number: usize,
    /// The line's code text; every comment/string/char byte is a space.
    pub code: String,
}

/// An inline `// tt-lint: allow(...)` directive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Directive {
    /// 1-based line the directive governs (its own line when trailing
    /// code, otherwise the next code-bearing line).
    pub line: usize,
    /// The lint name inside `allow(...)`.
    pub lint: String,
    /// The justification text after the closing paren (may be empty —
    /// the checker rejects empty justifications).
    pub justification: String,
    /// Whether this was `allow-file(...)`, covering the whole file.
    pub whole_file: bool,
    /// Line the directive itself appears on (for diagnostics).
    pub at: usize,
}

/// The lexed view of one file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// Code lines in order (all lines appear, possibly blank).
    pub lines: Vec<CodeLine>,
    /// Inline allow directives.
    pub directives: Vec<Directive>,
}

impl Lexed {
    /// 1-based line spans (inclusive) of `#[cfg(test)]`-gated items.
    pub fn test_spans(&self) -> Vec<(usize, usize)> {
        self.attribute_spans("#[cfg(test)]")
    }

    /// 1-based line spans (inclusive) of `impl … Machine for …` blocks.
    pub fn machine_impl_spans(&self) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let flat = self.flatten();
        let mut from = 0;
        while let Some(pos) = find_from(&flat.text, "impl", from) {
            from = pos + 4;
            if !is_word_boundary(&flat.text, pos, 4) {
                continue;
            }
            // Look at the text between `impl` and its opening brace: a
            // machine impl reads `impl [proto::]Machine for Type {`.
            let Some(brace) = flat.text[pos..].find('{').map(|i| pos + i) else {
                continue;
            };
            let header = &flat.text[pos..brace];
            let is_machine = header.contains(" Machine for ")
                || header.contains(" proto::Machine for ")
                || header.contains("\u{20}Machine for");
            if !is_machine {
                continue;
            }
            if let Some(close) = matching_brace(&flat.text, brace) {
                spans.push((flat.line_of(pos), flat.line_of(close)));
                from = close;
            }
        }
        spans
    }

    fn attribute_spans(&self, attr: &str) -> Vec<(usize, usize)> {
        let mut spans = Vec::new();
        let flat = self.flatten();
        let mut from = 0;
        while let Some(pos) = find_from(&flat.text, attr, from) {
            from = pos + attr.len();
            // The attribute gates the next item: skip any further
            // attributes, then brace-match the item's block.
            let Some(brace) = flat.text[from..].find('{').map(|i| from + i) else {
                continue;
            };
            if let Some(close) = matching_brace(&flat.text, brace) {
                spans.push((flat.line_of(pos), flat.line_of(close)));
                from = close;
            }
        }
        spans
    }

    fn flatten(&self) -> Flat {
        let mut text = String::new();
        let mut starts = Vec::with_capacity(self.lines.len());
        for line in &self.lines {
            starts.push((text.len(), line.number));
            text.push_str(&line.code);
            text.push('\n');
        }
        Flat { text, starts }
    }
}

struct Flat {
    text: String,
    /// (byte offset of line start, 1-based line number)
    starts: Vec<(usize, usize)>,
}

impl Flat {
    fn line_of(&self, offset: usize) -> usize {
        match self.starts.binary_search_by_key(&offset, |&(o, _)| o) {
            Ok(i) => self.starts[i].1,
            Err(0) => 1,
            Err(i) => self.starts[i - 1].1,
        }
    }
}

fn find_from(haystack: &str, needle: &str, from: usize) -> Option<usize> {
    haystack.get(from..)?.find(needle).map(|i| from + i)
}

/// True when `text[pos..pos + len]` is not embedded in a larger identifier.
pub fn is_word_boundary(text: &str, pos: usize, len: usize) -> bool {
    let before = text[..pos].chars().next_back();
    let after = text[pos + len..].chars().next();
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    before.is_none_or(|c| !is_ident(c)) && after.is_none_or(|c| !is_ident(c))
}

/// Byte offset of the `}` matching the `{` at `open`, if balanced.
fn matching_brace(text: &str, open: usize) -> Option<usize> {
    let bytes = text.as_bytes();
    debug_assert_eq!(bytes[open], b'{');
    let mut depth = 0usize;
    for (i, &b) in bytes.iter().enumerate().skip(open) {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(i);
                }
            }
            _ => {}
        }
    }
    None
}

/// Lexes `source` into blanked code lines plus directives.
pub fn lex(source: &str) -> Lexed {
    let mut lines: Vec<CodeLine> = Vec::new();
    let mut directives: Vec<Directive> = Vec::new();
    // Directives written on their own line govern the next code line;
    // park them here until that line shows up.
    let mut pending: Vec<Directive> = Vec::new();

    let chars: Vec<char> = source.chars().collect();
    let mut i = 0usize;
    let mut line_no = 1usize;
    let mut code = String::new();
    let mut line_had_code = false;

    macro_rules! finish_line {
        () => {{
            if line_had_code {
                for mut d in pending.drain(..) {
                    d.line = line_no;
                    directives.push(d);
                }
            }
            lines.push(CodeLine { number: line_no, code: std::mem::take(&mut code) });
            line_had_code = false;
            line_no += 1;
        }};
    }

    while i < chars.len() {
        let c = chars[i];
        match c {
            '\n' => {
                finish_line!();
                i += 1;
            }
            '/' if chars.get(i + 1) == Some(&'/') => {
                // Line comment: capture a directive if present, then blank
                // out to end of line.
                let start = i;
                while i < chars.len() && chars[i] != '\n' {
                    i += 1;
                }
                let comment: String = chars[start..i].iter().collect();
                if let Some(mut d) = parse_directive(&comment, line_no) {
                    if line_had_code {
                        d.line = line_no;
                        directives.push(d);
                    } else {
                        pending.push(d);
                    }
                }
            }
            '/' if chars.get(i + 1) == Some(&'*') => {
                // Block comment (nesting, multi-line).
                let mut depth = 1;
                i += 2;
                while i < chars.len() && depth > 0 {
                    if chars[i] == '\n' {
                        finish_line!();
                        i += 1;
                    } else if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                        depth += 1;
                        i += 2;
                    } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
            }
            '"' => {
                line_had_code = true;
                code.push(' ');
                i += 1;
                while i < chars.len() {
                    match chars[i] {
                        '\\' => i += 2,
                        '"' => {
                            i += 1;
                            break;
                        }
                        '\n' => {
                            finish_line!();
                            i += 1;
                        }
                        _ => i += 1,
                    }
                }
            }
            'r' | 'b' if starts_raw_string(&chars, i) => {
                line_had_code = true;
                code.push(' ');
                // Skip the prefix up to and including the opening quote,
                // counting `#`s.
                let mut j = i + 1;
                if chars.get(j) == Some(&'"') || chars.get(j) == Some(&'#') {
                } else {
                    j += 1; // the `r` of a `br` prefix
                }
                let mut hashes = 0usize;
                while chars.get(j) == Some(&'#') {
                    hashes += 1;
                    j += 1;
                }
                debug_assert_eq!(chars.get(j), Some(&'"'));
                i = j + 1;
                // Scan for `"` followed by `hashes` × `#`.
                'raw: while i < chars.len() {
                    if chars[i] == '\n' {
                        finish_line!();
                        i += 1;
                        continue;
                    }
                    if chars[i] == '"' {
                        let mut k = 0;
                        while k < hashes && chars.get(i + 1 + k) == Some(&'#') {
                            k += 1;
                        }
                        if k == hashes {
                            i += 1 + hashes;
                            break 'raw;
                        }
                    }
                    i += 1;
                }
            }
            '\'' => {
                // Char literal or lifetime. A char literal is `'\…'` or
                // `'x'`; anything else (`'a`, `'static`) is a lifetime.
                line_had_code = true;
                if chars.get(i + 1) == Some(&'\\') {
                    code.push(' ');
                    i += 2;
                    while i < chars.len() && chars[i] != '\'' {
                        i += 1;
                    }
                    i += 1;
                } else if chars.get(i + 2) == Some(&'\'') {
                    code.push(' ');
                    i += 3;
                } else {
                    code.push(c);
                    i += 1;
                }
            }
            _ => {
                if !c.is_whitespace() {
                    line_had_code = true;
                }
                code.push(c);
                i += 1;
            }
        }
    }
    if !code.is_empty() || line_had_code {
        if line_had_code {
            for mut d in pending.drain(..) {
                d.line = line_no;
                directives.push(d);
            }
        }
        lines.push(CodeLine { number: line_no, code });
    }
    Lexed { lines, directives }
}

fn starts_raw_string(chars: &[char], i: usize) -> bool {
    // r"…", r#"…"#, br"…", br#"…"# — but not an identifier like `radius`.
    if i > 0 {
        let prev = chars[i - 1];
        if prev.is_alphanumeric() || prev == '_' {
            return false;
        }
    }
    let mut j = i + 1;
    if chars[i] == 'b' {
        if chars.get(j) != Some(&'r') {
            return false;
        }
        j += 1;
    }
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

fn parse_directive(comment: &str, at: usize) -> Option<Directive> {
    let body = comment.trim_start_matches('/').trim();
    let rest = body.strip_prefix("tt-lint:")?.trim();
    let (whole_file, rest) = if let Some(r) = rest.strip_prefix("allow-file(") {
        (true, r)
    } else if let Some(r) = rest.strip_prefix("allow(") {
        (false, r)
    } else {
        return None;
    };
    let close = rest.find(')')?;
    let lint = rest[..close].trim().to_string();
    let tail = rest[close + 1..].trim();
    let justification = tail.trim_start_matches(['—', '-', ':', ' ']).trim().to_string();
    Some(Directive { line: at, lint, justification, whole_file, at })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strings_and_comments_are_blanked() {
        let lexed = lex("let x = \"HashMap\"; // HashMap in a comment\nlet y = HashMap::new();\n");
        assert!(!lexed.lines[0].code.contains("HashMap"));
        assert!(lexed.lines[1].code.contains("HashMap"));
    }

    #[test]
    fn raw_strings_are_blanked() {
        let lexed = lex("let x = r#\"Instant::now()\"#;\nInstant::now();\n");
        assert!(!lexed.lines[0].code.contains("Instant"));
        assert!(lexed.lines[1].code.contains("Instant"));
    }

    #[test]
    fn lifetimes_survive_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }\n");
        assert!(lexed.lines[0].code.contains("'a"));
        assert!(!lexed.lines[0].code.contains("'x'"));
    }

    #[test]
    fn trailing_directive_governs_its_own_line() {
        let lexed =
            lex("let m = HashMap::new(); // tt-lint: allow(hash-collections) — lookups only\n");
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].line, 1);
        assert_eq!(lexed.directives[0].lint, "hash-collections");
        assert_eq!(lexed.directives[0].justification, "lookups only");
    }

    #[test]
    fn standalone_directive_governs_next_code_line() {
        let src = "// tt-lint: allow(wall-clock) — bench harness timing\n// another comment\nlet t = Instant::now();\n";
        let lexed = lex(src);
        assert_eq!(lexed.directives.len(), 1);
        assert_eq!(lexed.directives[0].line, 3);
    }

    #[test]
    fn cfg_test_spans_cover_the_module() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let lexed = lex(src);
        assert_eq!(lexed.test_spans(), vec![(2, 5)]);
    }

    #[test]
    fn machine_impl_spans_found() {
        let src = "struct M;\nimpl Machine for M {\n    fn f() {}\n}\nimpl Other for M {\n}\n";
        let lexed = lex(src);
        assert_eq!(lexed.machine_impl_spans(), vec![(2, 4)]);
    }

    #[test]
    fn block_comments_span_lines() {
        let lexed = lex("/* HashMap\nHashMap */ let x = 1;\n");
        assert!(!lexed.lines[0].code.contains("HashMap"));
        assert!(!lexed.lines[1].code.contains("HashMap"));
        assert!(lexed.lines[1].code.contains("let x"));
    }
}
