//! The workspace allowlist: file-granular, justified exceptions.
//!
//! Format (one entry per line, `#` comments allowed):
//!
//! ```text
//! <lint-name> <workspace-relative-path> — <justification>
//! ```
//!
//! Every entry must carry a justification, and every entry must match at
//! least one finding — an entry with zero matches is *stale* (the code it
//! excused was fixed or moved) and fails the check, so the allowlist can
//! only shrink or stay honest.

use std::path::Path;

/// One parsed allowlist entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Entry {
    /// Lint name the entry suppresses.
    pub lint: String,
    /// Workspace-relative file the entry covers.
    pub path: String,
    /// Why the exception is sound.
    pub justification: String,
    /// 1-based line in the allowlist file (for diagnostics).
    pub line: usize,
}

/// A parse problem in the allowlist file itself.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line of the offending entry.
    pub line: usize,
    /// What is wrong with it.
    pub message: String,
}

/// Parses allowlist text into entries plus any malformed lines.
pub fn parse(text: &str) -> (Vec<Entry>, Vec<ParseError>) {
    let mut entries = Vec::new();
    let mut errors = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = i + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.splitn(3, char::is_whitespace);
        let (Some(lint), Some(path)) = (parts.next(), parts.next()) else {
            errors.push(ParseError {
                line,
                message: "expected `<lint> <path> — <justification>`".to_string(),
            });
            continue;
        };
        let justification = parts
            .next()
            .unwrap_or("")
            .trim()
            .trim_start_matches(['—', '-', ':'])
            .trim()
            .to_string();
        if justification.is_empty() {
            errors.push(ParseError {
                line,
                message: format!("allowlist entry for `{lint}` in {path} has no justification"),
            });
            continue;
        }
        entries.push(Entry { lint: lint.to_string(), path: normalize(path), justification, line });
    }
    (entries, errors)
}

/// Canonical workspace-relative form used for matching (forward slashes,
/// no leading `./`).
pub fn normalize(path: &str) -> String {
    path.trim_start_matches("./").replace('\\', "/")
}

/// Canonicalizes a filesystem path relative to the workspace root.
pub fn normalize_rel(root: &Path, file: &Path) -> String {
    let rel = file.strip_prefix(root).unwrap_or(file);
    normalize(&rel.to_string_lossy())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_entries_and_skips_comments() {
        let (entries, errors) = parse(
            "# header\n\
             hash-collections crates/runtime/src/keys.rs — lookup table, never iterated\n\
             \n\
             # trailing comment\n",
        );
        assert!(errors.is_empty());
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].lint, "hash-collections");
        assert_eq!(entries[0].path, "crates/runtime/src/keys.rs");
        assert_eq!(entries[0].justification, "lookup table, never iterated");
        assert_eq!(entries[0].line, 2);
    }

    #[test]
    fn missing_justification_is_an_error() {
        let (entries, errors) = parse("wall-clock crates/foo/src/lib.rs\n");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
        assert!(errors[0].message.contains("no justification"));
    }

    #[test]
    fn malformed_line_is_an_error() {
        let (entries, errors) = parse("just-one-token\n");
        assert!(entries.is_empty());
        assert_eq!(errors.len(), 1);
    }
}
