//! The lint catalog: repo-specific invariants the workspace must hold.
//!
//! Three families, mirroring the determinism contract in DESIGN.md:
//!
//! - **determinism lints** (`wall-clock`, `ambient-rng`,
//!   `hash-collections`, `ambient-io`) fire anywhere inside a
//!   deterministic crate,
//! - the **effect-boundary lint** (`effect-boundary`) fires only inside
//!   `impl Machine for …` blocks, where every clock/RNG/network/thread
//!   capability must come through `proto::Env`,
//! - the **panic-surface lint** (`panic-surface`) fires only in the
//!   message-handling hot-path modules (wire decode → machine input),
//!   where fault plans require graceful degradation instead of aborts,
//! - the **unsafe-intrinsics lint** (`unsafe-intrinsics`) fires in every
//!   scanned crate: `unsafe` and CPU-intrinsic machinery are licensed
//!   only inside the designated crypto kernel pair
//!   (`crates/crypto/src/{backend,clmul}.rs`), where each use carries a
//!   justified allow; an allow anywhere else is itself a policy error.

use crate::lexer::CodeLine;

/// Where a lint applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scope {
    /// Every file of every deterministic crate.
    DeterministicCrates,
    /// Only inside `impl Machine for …` spans (any scanned crate).
    MachineImpls,
    /// Only the configured hot-path modules.
    HotPathModules,
    /// Every file of every scanned crate, deterministic or not.
    AllCrates,
}

/// One lint: a name, a scope, the tokens that trigger it, and the
/// diagnostic text.
#[derive(Debug)]
pub struct Lint {
    /// Lint name as used in diagnostics and `tt-lint: allow(...)`.
    pub name: &'static str,
    /// Where the lint applies.
    pub scope: Scope,
    /// Code tokens (word-boundary matched) that trigger the lint.
    pub patterns: &'static [&'static str],
    /// What went wrong.
    pub message: &'static str,
    /// How to fix it.
    pub help: &'static str,
}

/// The full catalog.
pub const LINTS: &[Lint] = &[
    Lint {
        name: "wall-clock",
        scope: Scope::DeterministicCrates,
        patterns: &["Instant", "SystemTime"],
        message: "wall-clock time source in a deterministic crate",
        help: "simulated time comes from `Env::now()` / `Ctx::now()`; wall clocks belong to \
               the live runtime (crates/net) only",
    },
    Lint {
        name: "ambient-rng",
        scope: Scope::DeterministicCrates,
        patterns: &["thread_rng", "from_entropy", "OsRng", "getrandom", "rand::random"],
        message: "ambient (non-seeded) randomness in a deterministic crate",
        help: "all randomness must flow from the run's seeded `StdRng` (via `Env::rng()` or an \
               explicitly derived seed)",
    },
    Lint {
        name: "hash-collections",
        scope: Scope::DeterministicCrates,
        patterns: &["HashMap", "HashSet", "RandomState"],
        message: "RandomState-keyed collection in a deterministic crate (iteration order is \
                  nondeterministic per process)",
        help: "use BTreeMap/BTreeSet or drain through a sort, or justify with \
               `// tt-lint: allow(hash-collections) — <why>` if the map is never iterated",
    },
    Lint {
        name: "ambient-io",
        scope: Scope::DeterministicCrates,
        patterns: &["std::fs", "std::env"],
        message: "ambient filesystem/environment access in a deterministic crate",
        help: "artifact writing goes through the designated output modules (trace::sink, \
               experiments::output); nothing else may touch the host environment",
    },
    Lint {
        name: "effect-boundary",
        scope: Scope::MachineImpls,
        patterns: &[
            "std::net",
            "std::thread",
            "std::sync",
            "UdpSocket",
            "TcpStream",
            "TcpListener",
            "Mutex",
            "RwLock",
            "Condvar",
            "Instant",
            "SystemTime",
            "thread_rng",
        ],
        message: "direct platform capability inside an `impl Machine` block",
        help: "machines run unchanged under the sim and the live UDP runtime; every clock, RNG, \
               socket, or cross-thread effect must go through `proto::Env`",
    },
    Lint {
        name: "unsafe-intrinsics",
        scope: Scope::AllCrates,
        patterns: &["unsafe", "is_x86_feature_detected", "core::arch", "std::arch"],
        message: "unsafe code / CPU intrinsics outside the designated crypto kernel pair",
        help: "intrinsics live only in crates/crypto/src/backend.rs (safe wrappers, runtime \
               feature detection) and crates/crypto/src/clmul.rs (kernels); everything else \
               stays forbid(unsafe_code) so the determinism and memory-safety audit surface \
               is two files",
    },
    Lint {
        name: "panic-surface",
        scope: Scope::HotPathModules,
        patterns: &[".unwrap()", ".expect("],
        message: "unwrap/expect on the message-handling hot path",
        help: "wire decode → machine input must degrade gracefully under fault plans; return a \
               typed error that feeds the trace drop counters instead",
    },
];

/// Looks a lint up by name.
pub fn lint_by_name(name: &str) -> Option<&'static Lint> {
    LINTS.iter().find(|l| l.name == name)
}

/// All pattern hits of `lint` in `line`, as (column, pattern) pairs.
pub fn matches_in(lint: &Lint, line: &CodeLine) -> Vec<(usize, &'static str)> {
    let mut hits = Vec::new();
    for &pat in lint.patterns {
        let mut from = 0;
        while let Some(i) = line.code.get(from..).and_then(|s| s.find(pat)) {
            let pos = from + i;
            if pattern_matches(&line.code, pos, pat) {
                hits.push((pos + 1, pat));
            }
            from = pos + pat.len();
        }
    }
    hits.sort_unstable();
    hits
}

/// Word-boundary semantics for patterns that may carry `::`, `.`, `(`,
/// or `)` punctuation: the check applies to the identifier edges only,
/// so `HashMap` rejects `MyHashMapLike` but `std::time::Instant` still
/// hits the bare `Instant` pattern.
fn pattern_matches(code: &str, pos: usize, pat: &str) -> bool {
    let is_ident = |c: char| c.is_alphanumeric() || c == '_';
    let starts_ident = pat.chars().next().is_some_and(is_ident);
    let ends_ident = pat.chars().next_back().is_some_and(is_ident);
    let before = code[..pos].chars().next_back();
    let after = code[pos + pat.len()..].chars().next();
    (!starts_ident || before.is_none_or(|c| !is_ident(c)))
        && (!ends_ident || after.is_none_or(|c| !is_ident(c)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(code: &str) -> CodeLine {
        CodeLine { number: 1, code: code.to_string() }
    }

    #[test]
    fn word_boundaries_respected() {
        let lint = lint_by_name("hash-collections").unwrap();
        assert_eq!(matches_in(lint, &line("let m: HashMap<u8, u8>;")).len(), 1);
        assert!(matches_in(lint, &line("let m = MyHashMapLike::new();")).is_empty());
        assert!(matches_in(lint, &line("let m = BTreeMap::new();")).is_empty());
    }

    #[test]
    fn unwrap_matches_calls_not_unwrap_or() {
        let lint = lint_by_name("panic-surface").unwrap();
        assert_eq!(matches_in(lint, &line("x.unwrap();")).len(), 1);
        assert!(matches_in(lint, &line("x.unwrap_or(0);")).is_empty());
        assert_eq!(matches_in(lint, &line("x.expect(\"msg\");")).len(), 1);
    }

    #[test]
    fn qualified_paths_match() {
        let lint = lint_by_name("ambient-io").unwrap();
        assert_eq!(matches_in(lint, &line("std::fs::write(p, b)?;")).len(), 1);
        assert_eq!(matches_in(lint, &line("use std::env;")).len(), 1);
    }
}
