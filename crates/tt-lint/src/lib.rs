//! `tt-lint` — the workspace determinism/effect-boundary analyzer.
//!
//! The repo's experimental claims (byte-identical artifacts at any
//! `--jobs N`, sim runs as trustworthy proxies for live runs) rest on
//! conventions no compiler checks: deterministic crates must not touch
//! wall clocks, ambient randomness, `RandomState` collections, or the
//! host environment; `Machine` implementations must reach every platform
//! capability through `proto::Env`; and the wire-decode → machine-input
//! hot path must not panic. This crate turns those conventions into a
//! gated check with rustc-style diagnostics.
//!
//! The build environment vendors no `syn`, so the analyzer is
//! token-level (in the style of rustc's `tidy`): [`lexer`] strips
//! comments/strings and recovers the little structure the lints need
//! (cfg(test) spans, `impl Machine` spans, allow directives), and
//! [`lints`] pattern-matches the remaining code. Exceptions are explicit
//! and justified — inline `// tt-lint: allow(<lint>) — <why>` for single
//! lines, a workspace allowlist file for whole files — and both go stale
//! loudly: an exception that no longer suppresses anything fails the
//! check.

pub mod allowlist;
pub mod lexer;
pub mod lints;

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use allowlist::Entry;
use lints::{Lint, Scope, LINTS};

/// Crates whose entire `src/` must stay deterministic: they feed the
/// seeded simulation and its artifacts.
pub const DETERMINISTIC_CRATES: &[&str] = &[
    "attacks",
    "authority",
    "core",
    "crypto",
    "experiments",
    "faults",
    "harness",
    "netsim",
    "proto",
    "resilient",
    "runtime",
    "scenario",
    "search",
    "service",
    "sim",
    "stats",
    "t3e",
    "trace",
    "tsc",
    "wire",
];

/// Crates scanned only for scoped lints (Machine impls, hot-path
/// modules): the live runtime and the bench harness legitimately use
/// wall clocks, threads, and sockets outside those spans.
pub const NON_DETERMINISTIC_CRATES: &[&str] = &["net", "bench"];

/// The designated artifact-writing modules, exempt from `ambient-io`:
/// every byte that leaves a run goes through one of these.
pub const OUTPUT_MODULES: &[&str] = &[
    "crates/trace/src/sink.rs",
    "crates/experiments/src/output.rs",
    "crates/search/src/corpus.rs",
];

/// The designated intrinsics module pair, the only files where
/// `unsafe-intrinsics` hits may be waived: the safe-wrapper/detection
/// layer and the kernels themselves. An allow directive (or allowlist
/// entry) for the lint anywhere else is a policy error, not an
/// exception — the point of the lint is that the audit surface for
/// unsafe code cannot silently grow.
pub const INTRINSICS_MODULES: &[&str] =
    &["crates/crypto/src/backend.rs", "crates/crypto/src/clmul.rs"];

/// The message-handling hot path (wire decode → machine input) where
/// `panic-surface` applies.
pub const HOT_PATH_MODULES: &[&str] = &[
    "crates/wire/src/codec.rs",
    "crates/wire/src/message.rs",
    "crates/runtime/src/messaging.rs",
    "crates/runtime/src/machine.rs",
    "crates/net/src/frame.rs",
    "crates/net/src/driver.rs",
];

/// One confirmed violation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Lint name.
    pub lint: &'static str,
    /// The token that triggered it.
    pub pattern: &'static str,
    /// Diagnostic text.
    pub message: &'static str,
    /// Fix guidance.
    pub help: &'static str,
}

/// A problem with an exception mechanism itself (bad directive, stale
/// entry, malformed allowlist line). These fail the check like findings.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PolicyError {
    /// Workspace-relative path (the allowlist file for its own errors).
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// What is wrong.
    pub message: String,
}

/// The outcome of a workspace check.
#[derive(Debug, Default)]
pub struct Report {
    /// Unsuppressed violations.
    pub findings: Vec<Finding>,
    /// Violations suppressed by a justified exception.
    pub suppressed: usize,
    /// Bad directives, stale exceptions, allowlist parse errors.
    pub policy_errors: Vec<PolicyError>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the workspace passes.
    pub fn clean(&self) -> bool {
        self.findings.is_empty() && self.policy_errors.is_empty()
    }
}

/// How a single file is classified for linting.
#[derive(Debug, Clone, Copy)]
struct FileClass {
    deterministic: bool,
    output_module: bool,
    hot_path: bool,
    intrinsics_module: bool,
}

fn classify(rel: &str) -> Option<FileClass> {
    let mut parts = rel.split('/');
    if parts.next() != Some("crates") {
        return None;
    }
    let krate = parts.next()?;
    if parts.next() != Some("src") {
        return None; // integration tests/ and benches/ are out of scope
    }
    let deterministic = DETERMINISTIC_CRATES.contains(&krate);
    if !deterministic && !NON_DETERMINISTIC_CRATES.contains(&krate) {
        return None; // tt-lint itself, or an unknown crate
    }
    Some(FileClass {
        deterministic,
        output_module: OUTPUT_MODULES.contains(&rel),
        hot_path: HOT_PATH_MODULES.contains(&rel),
        intrinsics_module: INTRINSICS_MODULES.contains(&rel),
    })
}

fn lint_applies(lint: &Lint, class: FileClass) -> bool {
    match lint.scope {
        Scope::DeterministicCrates => {
            class.deterministic && !(lint.name == "ambient-io" && class.output_module)
        }
        Scope::MachineImpls => true, // narrowed to impl spans per file
        Scope::HotPathModules => class.hot_path,
        Scope::AllCrates => true,
    }
}

fn in_spans(spans: &[(usize, usize)], line: usize) -> bool {
    spans.iter().any(|&(a, b)| line >= a && line <= b)
}

/// Lints one file's source text. Returns `(findings, policy_errors,
/// suppressed_count, used_allowlist_lines)`; `entries` are the allowlist
/// entries covering this file.
pub fn lint_source(
    rel: &str,
    source: &str,
    entries: &[Entry],
) -> (Vec<Finding>, Vec<PolicyError>, usize, Vec<usize>) {
    let Some(class) = classify(rel) else {
        return (Vec::new(), Vec::new(), 0, Vec::new());
    };
    let lexed = lexer::lex(source);
    let test_spans = lexed.test_spans();
    let machine_spans = lexed.machine_impl_spans();

    let mut policy = Vec::new();
    // Validate directives up front; invalid ones never suppress.
    let mut directives = Vec::new();
    for d in &lexed.directives {
        if lints::lint_by_name(&d.lint).is_none() {
            policy.push(PolicyError {
                file: rel.to_string(),
                line: d.at,
                message: format!("tt-lint: allow({}) names no known lint", d.lint),
            });
        } else if d.justification.is_empty() {
            policy.push(PolicyError {
                file: rel.to_string(),
                line: d.at,
                message: format!(
                    "tt-lint: allow({}) carries no justification — write \
                     `// tt-lint: allow({}) — <why>`",
                    d.lint, d.lint
                ),
            });
        } else if d.lint == "unsafe-intrinsics" && !class.intrinsics_module {
            policy.push(PolicyError {
                file: rel.to_string(),
                line: d.at,
                message: "unsafe-intrinsics cannot be waived here — unsafe code and CPU \
                          intrinsics are licensed only in crates/crypto/src/backend.rs and \
                          crates/crypto/src/clmul.rs"
                    .to_string(),
            });
        } else {
            directives.push((d.clone(), std::cell::Cell::new(0usize)));
        }
    }

    let mut findings = Vec::new();
    let mut suppressed = 0usize;
    let mut used_entries: Vec<usize> = Vec::new();

    for line in &lexed.lines {
        if in_spans(&test_spans, line.number) {
            continue;
        }
        for lint in LINTS {
            if !lint_applies(lint, class) {
                continue;
            }
            if lint.scope == Scope::MachineImpls && !in_spans(&machine_spans, line.number) {
                continue;
            }
            for (_, pattern) in lints::matches_in(lint, line) {
                // Inline directive?
                if let Some((_, uses)) = directives
                    .iter()
                    .find(|(d, _)| d.lint == lint.name && (d.whole_file || d.line == line.number))
                {
                    uses.set(uses.get() + 1);
                    suppressed += 1;
                    continue;
                }
                // Allowlist entry?
                if let Some(e) = entries.iter().find(|e| e.lint == lint.name && e.path == rel) {
                    used_entries.push(e.line);
                    suppressed += 1;
                    continue;
                }
                findings.push(Finding {
                    file: rel.to_string(),
                    line: line.number,
                    lint: lint.name,
                    pattern,
                    message: lint.message,
                    help: lint.help,
                });
            }
        }
    }

    // An inline allow that suppressed nothing is stale.
    for (d, uses) in &directives {
        if uses.get() == 0 {
            policy.push(PolicyError {
                file: rel.to_string(),
                line: d.at,
                message: format!(
                    "stale tt-lint: allow({}) — it no longer suppresses anything; delete it",
                    d.lint
                ),
            });
        }
    }

    (findings, policy, suppressed, used_entries)
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut children: Vec<PathBuf> =
        std::fs::read_dir(dir)?.filter_map(|e| e.ok().map(|e| e.path())).collect();
    children.sort();
    for child in children {
        if child.is_dir() {
            walk_rs(&child, out)?;
        } else if child.extension().is_some_and(|e| e == "rs") {
            out.push(child);
        }
    }
    Ok(())
}

/// Checks the whole workspace rooted at `root`, reading the allowlist
/// from `allowlist_path` (missing file = empty allowlist).
///
/// # Errors
///
/// Returns an I/O error when the workspace layout cannot be read.
pub fn check_workspace(root: &Path, allowlist_path: &Path) -> std::io::Result<Report> {
    let mut report = Report::default();

    let allow_rel = allowlist::normalize_rel(root, allowlist_path);
    let (entries, parse_errors) = match std::fs::read_to_string(allowlist_path) {
        Ok(text) => allowlist::parse(&text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => (Vec::new(), Vec::new()),
        Err(e) => return Err(e),
    };
    for pe in parse_errors {
        report.policy_errors.push(PolicyError {
            file: allow_rel.clone(),
            line: pe.line,
            message: pe.message,
        });
    }
    for e in &entries {
        if lints::lint_by_name(&e.lint).is_none() {
            report.policy_errors.push(PolicyError {
                file: allow_rel.clone(),
                line: e.line,
                message: format!("allowlist entry names no known lint `{}`", e.lint),
            });
        } else if e.lint == "unsafe-intrinsics" && !INTRINSICS_MODULES.contains(&e.path.as_str()) {
            report.policy_errors.push(PolicyError {
                file: allow_rel.clone(),
                line: e.line,
                message: format!(
                    "allowlist cannot waive unsafe-intrinsics for `{}` — unsafe code is \
                     licensed only in crates/crypto/src/backend.rs and clmul.rs",
                    e.path
                ),
            });
        }
    }

    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    walk_rs(&crates_dir, &mut files)?;

    let mut entry_uses: BTreeMap<usize, usize> = BTreeMap::new();
    for file in files {
        let rel = allowlist::normalize_rel(root, &file);
        if classify(&rel).is_none() {
            continue;
        }
        let source = std::fs::read_to_string(&file)?;
        let (findings, policy, suppressed, used) = lint_source(&rel, &source, &entries);
        report.files_scanned += 1;
        report.suppressed += suppressed;
        report.findings.extend(findings);
        report.policy_errors.extend(policy);
        for line in used {
            *entry_uses.entry(line).or_insert(0) += 1;
        }
    }

    for e in &entries {
        if lints::lint_by_name(&e.lint).is_some() && !entry_uses.contains_key(&e.line) {
            report.policy_errors.push(PolicyError {
                file: allow_rel.clone(),
                line: e.line,
                message: format!(
                    "stale allowlist entry: `{} {}` matches no finding; delete it",
                    e.lint, e.path
                ),
            });
        }
    }

    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_workspace_paths_are_skipped() {
        let (f, p, s, u) = lint_source("src/lib.rs", "use std::collections::HashMap;", &[]);
        assert!(f.is_empty() && p.is_empty() && s == 0 && u.is_empty());
        let (f, _, _, _) =
            lint_source("crates/tt-lint/src/lib.rs", "use std::collections::HashMap;", &[]);
        assert!(f.is_empty(), "tt-lint does not scan itself");
    }

    #[test]
    fn deterministic_crate_flags_hashmap() {
        let (f, _, _, _) =
            lint_source("crates/proto/src/x.rs", "use std::collections::HashMap;\n", &[]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, "hash-collections");
        assert_eq!(f[0].line, 1);
    }

    #[test]
    fn cfg_test_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n    use std::time::Instant;\n}\n";
        let (f, _, _, _) = lint_source("crates/proto/src/x.rs", src, &[]);
        assert!(f.is_empty());
    }

    #[test]
    fn live_crate_is_exempt_from_determinism_lints() {
        let (f, _, _, _) = lint_source("crates/net/src/x.rs", "use std::time::Instant;\n", &[]);
        assert!(f.is_empty());
    }
}
