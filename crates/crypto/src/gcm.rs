//! AES-256-GCM authenticated encryption (SP 800-38D, 96-bit nonces).

use crate::aes::Aes256;
use crate::backend::{Accel, CryptoBackend};
use crate::ghash::{Ghash, GhashKey};

/// Length of the authentication tag appended to every ciphertext.
pub const TAG_LEN: usize = 16;
/// Length of the GCM nonce (only the standard 96-bit size is supported).
pub const NONCE_LEN: usize = 12;

/// Authentication failure on [`Aes256Gcm::open`].
///
/// Deliberately carries no detail: distinguishing tag failures from format
/// failures would hand an oracle to the on-path attacker.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuthError;

impl std::fmt::Display for AuthError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("authentication failed")
    }
}

impl std::error::Error for AuthError {}

/// An AES-256-GCM AEAD instance bound to one key.
///
/// # Examples
///
/// ```
/// use tt_crypto::Aes256Gcm;
///
/// let aead = Aes256Gcm::new(&[7u8; 32]);
/// let sealed = aead.seal(&[0u8; 12], b"header", b"trusted timestamp");
/// let opened = aead.open(&[0u8; 12], b"header", &sealed).unwrap();
/// assert_eq!(opened, b"trusted timestamp");
/// assert!(aead.open(&[1u8; 12], b"header", &sealed).is_err());
/// ```
#[derive(Debug, Clone)]
pub struct Aes256Gcm {
    cipher: Aes256,
    h: GhashKey,
    /// Accelerated per-key state; `None` on the soft backend. Both
    /// paths produce identical bytes, so this never affects outputs.
    accel: Option<Accel>,
}

impl Aes256Gcm {
    /// Creates an AEAD from a 256-bit key on the process-wide backend
    /// ([`CryptoBackend::active`]).
    ///
    /// Key setup precomputes the AES round keys and the GHASH subkey's
    /// multiplication tables (plus, on the accelerated backend, the
    /// GHASH key powers), so per-message work is table lookups or
    /// AES-NI/PCLMULQDQ instructions only.
    pub fn new(key: &[u8; 32]) -> Self {
        Self::with_backend(key, CryptoBackend::active())
    }

    /// Creates an AEAD pinned to a specific backend.
    ///
    /// Production code uses [`Aes256Gcm::new`]; this exists so
    /// differential tests can hold both implementations side by side in
    /// one process and assert byte-identical outputs.
    pub fn with_backend(key: &[u8; 32], backend: CryptoBackend) -> Self {
        let cipher = Aes256::new(key);
        let h0 = cipher.encrypt_block_copy(&[0u8; 16]);
        let h = GhashKey::new(&h0);
        let accel = Accel::new(backend, cipher.round_key_blocks(), u128::from_be_bytes(h0));
        Aes256Gcm { cipher, h, accel }
    }

    /// The backend this instance actually runs on ([`CryptoBackend::Accel`]
    /// only when the CPU probe passed).
    pub fn backend(&self) -> CryptoBackend {
        if self.accel.is_some() {
            CryptoBackend::Accel
        } else {
            CryptoBackend::Soft
        }
    }

    pub(crate) fn j0(nonce: &[u8; NONCE_LEN]) -> [u8; 16] {
        let mut j0 = [0u8; 16];
        j0[..12].copy_from_slice(nonce);
        j0[15] = 1;
        j0
    }

    /// AES-encrypts every 16-byte block in place — counter blocks on the
    /// batch-seal path. One backend dispatch for the whole slice: the
    /// accelerated path sweeps 8 blocks per AES-NI round trip.
    pub(crate) fn encrypt_counter_blocks(&self, blocks: &mut [[u8; 16]]) {
        match &self.accel {
            Some(a) => a.encrypt_blocks(blocks),
            None => {
                for b in blocks {
                    self.cipher.encrypt_block(b);
                }
            }
        }
    }

    /// Portable CTR keystream XOR (the accelerated path fuses this into
    /// [`Accel::seal_frame`]/[`Accel::open_frame`]).
    fn ctr_xor(&self, j0: &[u8; 16], data: &mut [u8]) {
        let mut counter = u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]);
        for chunk in data.chunks_mut(16) {
            counter = counter.wrapping_add(1);
            let mut block = *j0;
            block[12..].copy_from_slice(&counter.to_be_bytes());
            self.cipher.encrypt_block(&mut block);
            for (b, k) in chunk.iter_mut().zip(block.iter()) {
                *b ^= k;
            }
        }
    }

    /// GHASH digest over `aad || ciphertext` (each zero-padded) plus the
    /// length block — the tag before the `E(J0)` mask.
    fn ghash_digest(&self, aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        if let Some(a) = &self.accel {
            return a.ghash_tag(aad, ciphertext).to_be_bytes();
        }
        let mut ghash = Ghash::new(&self.h);
        ghash.update_padded(aad);
        ghash.update_padded(ciphertext);
        ghash.finalize(aad.len(), ciphertext.len())
    }

    /// Computes a tag from an *already encrypted* `J0` block — the
    /// batch-seal path, where all `E(J0)`s of a batch were produced in
    /// one counter-block sweep.
    pub(crate) fn tag_with_ej0(&self, ek_j0: &[u8; 16], aad: &[u8], ct: &[u8]) -> [u8; 16] {
        let s = self.ghash_digest(aad, ct);
        let mut tag = [0u8; 16];
        for i in 0..16 {
            tag[i] = s[i] ^ ek_j0[i];
        }
        tag
    }

    fn tag(&self, j0: &[u8; 16], aad: &[u8], ciphertext: &[u8]) -> [u8; 16] {
        self.tag_with_ej0(&self.cipher.encrypt_block_copy(j0), aad, ciphertext)
    }

    /// Encrypts and authenticates `plaintext` (authenticating `aad` as
    /// well), returning `ciphertext || tag`.
    ///
    /// The caller must never reuse a nonce under the same key; the
    /// [`crate::SealingKey`] wrapper enforces this with a counter.
    pub fn seal(&self, nonce: &[u8; NONCE_LEN], aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(plaintext.len() + TAG_LEN);
        self.seal_into(nonce, aad, plaintext, &mut out);
        out
    }

    /// Allocation-free [`Aes256Gcm::seal`]: appends `ciphertext || tag` to
    /// `out`, leaving any existing prefix (e.g. a wire header) untouched.
    pub fn seal_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        plaintext: &[u8],
        out: &mut Vec<u8>,
    ) {
        let j0 = Self::j0(nonce);
        if let Some(a) = &self.accel {
            // One fused kernel call per frame: CTR keystream, in-place
            // XOR, GHASH, and tag mask behind a single round-key load.
            let start = out.len();
            out.extend_from_slice(plaintext);
            let tag = a.seal_frame(&j0, aad, &mut out[start..]);
            out.extend_from_slice(&tag);
            return;
        }
        let start = out.len();
        out.extend_from_slice(plaintext);
        self.ctr_xor(&j0, &mut out[start..]);
        let tag = self.tag(&j0, aad, &out[start..]);
        out.extend_from_slice(&tag);
    }

    /// Verifies and decrypts `ciphertext || tag` produced by
    /// [`Aes256Gcm::seal`].
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] if the input is shorter than a tag, the tag
    /// does not verify, or `aad`/`nonce` differ from the sealing call.
    pub fn open(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
    ) -> Result<Vec<u8>, AuthError> {
        let mut out = Vec::with_capacity(sealed.len().saturating_sub(TAG_LEN));
        self.open_into(nonce, aad, sealed, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`Aes256Gcm::open`]: appends the plaintext to `out`.
    ///
    /// # Errors
    ///
    /// Returns [`AuthError`] exactly as [`Aes256Gcm::open`] does; `out` is
    /// untouched on failure (verify-then-decrypt).
    pub fn open_into(
        &self,
        nonce: &[u8; NONCE_LEN],
        aad: &[u8],
        sealed: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), AuthError> {
        if sealed.len() < TAG_LEN {
            return Err(AuthError);
        }
        let (ciphertext, tag) = sealed.split_at(sealed.len() - TAG_LEN);
        let j0 = Self::j0(nonce);
        if let Some(a) = &self.accel {
            // Same fused shape as the sealing side. The ciphertext is
            // staged into `out` (it is public data) and only decrypted
            // in place after the tag verifies; on failure the staging is
            // truncated away, so no plaintext is ever materialized.
            let start = out.len();
            out.extend_from_slice(ciphertext);
            if !a.open_frame(&j0, aad, &mut out[start..], tag) {
                out.truncate(start);
                return Err(AuthError);
            }
            return Ok(());
        }
        let expected = self.tag(&j0, aad, ciphertext);
        // Branch-free comparison; full constant-time operation is a non-goal
        // (see crate docs) but there is no reason to be sloppy here.
        let mut diff = 0u8;
        for (a, b) in expected.iter().zip(tag.iter()) {
            diff |= a ^ b;
        }
        if diff != 0 {
            return Err(AuthError);
        }
        let start = out.len();
        out.extend_from_slice(ciphertext);
        self.ctr_xor(&j0, &mut out[start..]);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::{from_hex, to_hex};

    fn key(hexstr: &str) -> [u8; 32] {
        from_hex(hexstr).try_into().unwrap()
    }

    fn nonce(hexstr: &str) -> [u8; 12] {
        from_hex(hexstr).try_into().unwrap()
    }

    /// NIST GCM spec test case 13: empty plaintext, empty AAD.
    #[test]
    fn nist_tc13_empty() {
        let aead = Aes256Gcm::new(&[0u8; 32]);
        let sealed = aead.seal(&[0u8; 12], b"", b"");
        assert_eq!(to_hex(&sealed), "530f8afbc74536b9a963b4f1c4cb738b");
        assert_eq!(aead.open(&[0u8; 12], b"", &sealed).unwrap(), b"");
    }

    /// NIST GCM spec test case 14: one zero block.
    #[test]
    fn nist_tc14_single_block() {
        let aead = Aes256Gcm::new(&[0u8; 32]);
        let sealed = aead.seal(&[0u8; 12], b"", &[0u8; 16]);
        assert_eq!(
            to_hex(&sealed),
            "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919"
        );
    }

    /// NIST GCM spec test case 15: 4 blocks, no AAD.
    #[test]
    fn nist_tc15_four_blocks() {
        let k = key("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let iv = nonce("cafebabefacedbaddecaf888");
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b391aafd255",
        );
        let aead = Aes256Gcm::new(&k);
        let sealed = aead.seal(&iv, b"", &pt);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            to_hex(ct),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662898015ad"
        );
        assert_eq!(to_hex(tag), "b094dac5d93471bdec1a502270e3cc6c");
        assert_eq!(aead.open(&iv, b"", &sealed).unwrap(), pt);
    }

    /// NIST GCM spec test case 16: truncated plaintext plus AAD.
    #[test]
    fn nist_tc16_with_aad() {
        let k = key("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let iv = nonce("cafebabefacedbaddecaf888");
        let pt = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        let aead = Aes256Gcm::new(&k);
        let sealed = aead.seal(&iv, &aad, &pt);
        let (ct, tag) = sealed.split_at(sealed.len() - 16);
        assert_eq!(
            to_hex(ct),
            "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
             8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662"
        );
        assert_eq!(to_hex(tag), "76fc6ece0f4e1768cddf8853bb2d551b");
        assert_eq!(aead.open(&iv, &aad, &sealed).unwrap(), pt);
    }

    /// Every NIST vector above, replayed against *both* backends
    /// explicitly — `Aes256Gcm::new` above already exercises whichever
    /// backend the host detects, this pins down the other one too.
    #[test]
    fn nist_vectors_pass_on_both_backends() {
        let k16 = key("feffe9928665731c6d6a8f9467308308feffe9928665731c6d6a8f9467308308");
        let iv16 = nonce("cafebabefacedbaddecaf888");
        let pt16 = from_hex(
            "d9313225f88406e5a55909c5aff5269a86a7a9531534f7da2e4c303d8a318a72\
             1c3c0c95956809532fcf0e2449a6b525b16aedf5aa0de657ba637b39",
        );
        let aad16 = from_hex("feedfacedeadbeeffeedfacedeadbeefabaddad2");
        for backend in [crate::CryptoBackend::Soft, crate::CryptoBackend::active()] {
            let zero = Aes256Gcm::with_backend(&[0u8; 32], backend);
            // TC13: empty plaintext, empty AAD.
            let sealed = zero.seal(&[0u8; 12], b"", b"");
            assert_eq!(to_hex(&sealed), "530f8afbc74536b9a963b4f1c4cb738b", "{backend:?}");
            // TC14: one zero block.
            let sealed = zero.seal(&[0u8; 12], b"", &[0u8; 16]);
            assert_eq!(
                to_hex(&sealed),
                "cea7403d4d606b6e074ec5d3baf39d18d0d1c8a799996bf0265b98b5d48ab919",
                "{backend:?}"
            );
            // TC16: truncated plaintext plus AAD.
            let aead = Aes256Gcm::with_backend(&k16, backend);
            let sealed = aead.seal(&iv16, &aad16, &pt16);
            let (ct, tag) = sealed.split_at(sealed.len() - 16);
            assert_eq!(
                to_hex(ct),
                "522dc1f099567d07f47f37a32a84427d643a8cdcbfe5c0c97598a2bd2555d1aa\
                 8cb08e48590dbb3da7b08b1056828838c5f61e6393ba7a0abcc9f662",
                "{backend:?}"
            );
            assert_eq!(to_hex(tag), "76fc6ece0f4e1768cddf8853bb2d551b", "{backend:?}");
            assert_eq!(aead.open(&iv16, &aad16, &sealed).unwrap(), pt16, "{backend:?}");
        }
    }

    #[test]
    fn tampering_is_detected() {
        let aead = Aes256Gcm::new(&[3u8; 32]);
        let n = [5u8; 12];
        let mut sealed = aead.seal(&n, b"aad", b"payload");
        // Flip one ciphertext bit.
        sealed[0] ^= 1;
        assert_eq!(aead.open(&n, b"aad", &sealed), Err(AuthError));
        sealed[0] ^= 1;
        // Flip one tag bit.
        let last = sealed.len() - 1;
        sealed[last] ^= 1;
        assert_eq!(aead.open(&n, b"aad", &sealed), Err(AuthError));
        sealed[last] ^= 1;
        // Wrong AAD.
        assert_eq!(aead.open(&n, b"other", &sealed), Err(AuthError));
        // Wrong nonce.
        assert_eq!(aead.open(&[6u8; 12], b"aad", &sealed), Err(AuthError));
        // Truncated below tag length.
        assert_eq!(aead.open(&n, b"aad", &sealed[..8]), Err(AuthError));
        // Untampered still opens.
        assert_eq!(aead.open(&n, b"aad", &sealed).unwrap(), b"payload");
    }

    #[test]
    fn ciphertext_hides_plaintext_equality_across_nonces() {
        let aead = Aes256Gcm::new(&[3u8; 32]);
        let a = aead.seal(&[0u8; 12], b"", b"same message");
        let b = aead.seal(&[1u8; 12], b"", b"same message");
        assert_ne!(a, b);
    }
}
