//! Minimal hex helpers (test vectors, debugging).

/// Encodes bytes as lowercase hex.
pub fn to_hex(bytes: &[u8]) -> String {
    let mut s = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        use std::fmt::Write;
        write!(s, "{b:02x}").expect("writing to String cannot fail");
    }
    s
}

/// Decodes a hex string (whitespace-free, even length).
///
/// # Panics
///
/// Panics on odd length or non-hex characters; intended for literals in
/// tests and fixtures, not untrusted input.
pub fn from_hex(s: &str) -> Vec<u8> {
    assert!(s.len().is_multiple_of(2), "hex string must have even length");
    (0..s.len())
        .step_by(2)
        .map(|i| u8::from_str_radix(&s[i..i + 2], 16).expect("invalid hex digit"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let bytes = vec![0x00, 0x0f, 0xf0, 0xff, 0x12];
        assert_eq!(to_hex(&bytes), "000ff0ff12");
        assert_eq!(from_hex("000ff0ff12"), bytes);
        assert_eq!(from_hex(""), Vec::<u8>::new());
    }

    #[test]
    #[should_panic(expected = "even length")]
    fn odd_length_panics() {
        from_hex("abc");
    }

    #[test]
    #[should_panic(expected = "invalid hex")]
    fn bad_digit_panics() {
        from_hex("zz");
    }
}
