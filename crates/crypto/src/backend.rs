//! Runtime crypto-backend selection and the accelerated per-key state.
//!
//! The crate carries two implementations of the AES-GCM primitives:
//!
//! - **Soft** — the portable table-based path (`aes.rs`/`ghash.rs`),
//!   always available, and the differential oracle for the fast path;
//! - **Accel** — AES-NI + PCLMULQDQ kernels (`clmul.rs`), selected only
//!   when the CPU advertises both feature bits at runtime.
//!
//! Selection happens **once per process** ([`CryptoBackend::active`],
//! cached in a `OnceLock`) so the hot path never re-detects. The two
//! backends are *value-identical* — same ciphertexts, same tags — so
//! backend choice can never leak into simulation artifacts; it only
//! changes how fast the bytes are produced. `TT_CRYPTO_BACKEND=soft`
//! forces the portable path (CI exercises this lane), and Miri builds
//! always take it (intrinsics are not interpretable).

use std::sync::OnceLock;

use crate::ghash::gf_mul;

#[cfg(all(target_arch = "x86_64", not(miri)))]
use crate::clmul;

/// Which AES-GCM implementation this process uses.
///
/// Obtain via [`CryptoBackend::active`]; construct explicitly only in
/// differential tests (`Aes256Gcm::with_backend`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CryptoBackend {
    /// Portable table-based AES + 4-bit-table GHASH. Always available.
    Soft,
    /// AES-NI block kernel + PCLMULQDQ GHASH. x86-64 with runtime-
    /// detected `aes` and `pclmulqdq` feature bits only.
    Accel,
}

static ACTIVE: OnceLock<CryptoBackend> = OnceLock::new();

impl CryptoBackend {
    /// The process-wide backend, detected on first call and cached.
    ///
    /// Honors `TT_CRYPTO_BACKEND=soft` (or `table`) to force the
    /// portable path; any other value (or none) means auto-detect.
    pub fn active() -> CryptoBackend {
        *ACTIVE.get_or_init(Self::detect)
    }

    fn detect() -> CryptoBackend {
        // tt-lint: allow(ambient-io) — backend selection only: both backends produce byte-identical ciphertexts, so this env read can never change a simulation artifact, only the speed at which it is produced.
        match std::env::var("TT_CRYPTO_BACKEND") {
            Ok(v) if v == "soft" || v == "table" => return CryptoBackend::Soft,
            _ => {}
        }
        #[cfg(all(target_arch = "x86_64", not(miri)))]
        {
            // tt-lint: allow(unsafe-intrinsics) — the runtime feature probe that licenses every unsafe intrinsic call in clmul.rs.
            let aes = std::arch::is_x86_feature_detected!("aes");
            // tt-lint: allow(unsafe-intrinsics) — second half of the same probe.
            let clmul = std::arch::is_x86_feature_detected!("pclmulqdq");
            if aes && clmul {
                return CryptoBackend::Accel;
            }
        }
        CryptoBackend::Soft
    }
}

/// Per-key accelerated state: the AES round keys laid out for `aesenc`
/// and the GHASH key powers `[H, H², …, H⁸]` for aggregated reduction.
///
/// Existence of a value of this type is the safety proof for calling
/// into `clmul.rs`: [`Accel::new`] returns `Some` only when the active
/// backend is [`CryptoBackend::Accel`], which in turn requires the
/// runtime feature probe to have passed.
#[cfg(all(target_arch = "x86_64", not(miri)))]
#[derive(Clone)]
pub(crate) struct Accel {
    rk: [[u8; 16]; clmul::ROUND_KEYS],
    powers: [u128; clmul::POWERS],
}

#[cfg(all(target_arch = "x86_64", not(miri)))]
impl Accel {
    /// Builds the accelerated state from the already-expanded portable
    /// schedule, or `None` when the backend is [`CryptoBackend::Soft`].
    ///
    /// `h` is the GHASH subkey `E(K, 0^128)` as a big-endian `u128`.
    /// The powers are computed with the bitwise oracle [`gf_mul`] — key
    /// setup is cold, and sharing the oracle keeps one source of truth.
    pub(crate) fn new(backend: CryptoBackend, rk: [[u8; 16]; 15], h: u128) -> Option<Accel> {
        if backend != CryptoBackend::Accel {
            return None;
        }
        let mut powers = [h; clmul::POWERS];
        for i in 1..clmul::POWERS {
            powers[i] = gf_mul(powers[i - 1], h);
        }
        Some(Accel { rk, powers })
    }

    /// AES-256-encrypts every block in place (8-wide AES-NI sweep).
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn encrypt_blocks(&self, blocks: &mut [[u8; 16]]) {
        // SAFETY: constructing `Accel` required `CryptoBackend::Accel`,
        // i.e. the `aes` feature bit was runtime-detected.
        // tt-lint: allow(unsafe-intrinsics) — sole safe wrapper over the feature-gated AES kernel; the Accel value is the detection proof.
        unsafe { clmul::encrypt_blocks(&self.rk, blocks) }
    }

    /// Absorbs one zero-padded GHASH section into accumulator `y`
    /// (differential-test harness for the aggregated kernel).
    #[cfg(test)]
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn ghash_padded(&self, y: u128, data: &[u8]) -> u128 {
        // SAFETY: as in `encrypt_blocks` — `pclmulqdq` was detected.
        unsafe { clmul::ghash_padded(&self.powers, y, data) }
    }

    /// The complete GHASH digest (`aad` ∥ `ct` ∥ lengths) of one message.
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn ghash_tag(&self, aad: &[u8], ct: &[u8]) -> u128 {
        // SAFETY: as in `encrypt_blocks` — `pclmulqdq` was detected.
        // tt-lint: allow(unsafe-intrinsics) — sole safe wrapper over the feature-gated one-call digest kernel; the Accel value is the detection proof.
        unsafe { clmul::ghash_tag(&self.powers, aad, ct) }
    }

    /// Seals one frame (encrypt in place + tag) in one kernel call.
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn seal_frame(&self, j0: &[u8; 16], aad: &[u8], data: &mut [u8]) -> [u8; 16] {
        // SAFETY: as in `encrypt_blocks` — both feature bits were detected.
        // tt-lint: allow(unsafe-intrinsics) — sole safe wrapper over the fused seal kernel; the Accel value is the detection proof.
        unsafe { clmul::seal_frame(&self.rk, &self.powers, j0, aad, data) }
    }

    /// Verifies one frame's tag and, on success, decrypts in place.
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn open_frame(
        &self,
        j0: &[u8; 16],
        aad: &[u8],
        data: &mut [u8],
        tag: &[u8],
    ) -> bool {
        // SAFETY: as in `encrypt_blocks` — both feature bits were detected.
        // tt-lint: allow(unsafe-intrinsics) — sole safe wrapper over the fused open kernel; the Accel value is the detection proof.
        unsafe { clmul::open_frame(&self.rk, &self.powers, j0, aad, data, tag) }
    }

    /// Multiplies `x` by the GHASH subkey `H` (the final length-block
    /// step of a tag; differential-test harness).
    #[cfg(test)]
    #[inline]
    #[allow(unsafe_code)]
    pub(crate) fn mul_h(&self, x: u128) -> u128 {
        // SAFETY: as in `encrypt_blocks` — `pclmulqdq` was detected.
        unsafe { clmul::gf_mul_clmul(x, self.powers[0]) }
    }
}

/// On non-x86-64 targets (and under Miri) no accelerated state can
/// exist: the type is uninhabited and every method is unreachable, so
/// `Option<Accel>` is always `None` and the soft path is taken
/// unconditionally.
#[cfg(not(all(target_arch = "x86_64", not(miri))))]
#[derive(Clone)]
pub(crate) enum Accel {}

#[cfg(not(all(target_arch = "x86_64", not(miri))))]
impl Accel {
    pub(crate) fn new(_backend: CryptoBackend, _rk: [[u8; 16]; 15], _h: u128) -> Option<Accel> {
        None
    }

    pub(crate) fn encrypt_blocks(&self, _blocks: &mut [[u8; 16]]) {
        match *self {}
    }

    pub(crate) fn ghash_tag(&self, _aad: &[u8], _ct: &[u8]) -> u128 {
        match *self {}
    }

    pub(crate) fn seal_frame(&self, _j0: &[u8; 16], _aad: &[u8], _data: &mut [u8]) -> [u8; 16] {
        match *self {}
    }

    pub(crate) fn open_frame(
        &self,
        _j0: &[u8; 16],
        _aad: &[u8],
        _data: &mut [u8],
        _tag: &[u8],
    ) -> bool {
        match *self {}
    }
}

impl std::fmt::Debug for Accel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Round keys and GHASH powers are key material: never leak them.
        f.write_str("Accel { .. }")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn active_is_stable_across_calls() {
        assert_eq!(CryptoBackend::active(), CryptoBackend::active());
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    #[allow(unsafe_code)]
    fn clmul_mul_matches_bitwise_oracle() {
        if CryptoBackend::active() != CryptoBackend::Accel {
            eprintln!("skipping: no AES-NI/PCLMULQDQ on this host or forced soft");
            return;
        }
        let mut samples = vec![0u128, 1, 1 << 127, u128::MAX, 0xe1 << 120];
        let mut x = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        for _ in 0..64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x);
        }
        for &a in &samples {
            for &b in &samples {
                // SAFETY: backend is Accel, so pclmulqdq was detected.
                let got = unsafe { clmul::gf_mul_clmul(a, b) };
                assert_eq!(got, gf_mul(a, b), "a={a:032x} b={b:032x}");
            }
        }
    }

    #[cfg(all(target_arch = "x86_64", not(miri)))]
    #[test]
    fn aggregated_ghash_matches_table_path() {
        use crate::ghash::{Ghash, GhashKey};
        if CryptoBackend::active() != CryptoBackend::Accel {
            eprintln!("skipping: no AES-NI/PCLMULQDQ on this host or forced soft");
            return;
        }
        let h_bytes = [0x5e; 16];
        let h = u128::from_be_bytes(h_bytes);
        let accel = Accel::new(CryptoBackend::Accel, [[0; 16]; 15], h).unwrap();
        let key = GhashKey::new(&h_bytes);
        // Lengths straddling the 4-block aggregation boundary, including
        // partial final blocks and multi-section updates.
        let data: Vec<u8> = (0..=255u8).cycle().take(200).collect();
        for len in [0, 1, 15, 16, 17, 63, 64, 65, 100, 128, 130, 200] {
            let mut g = Ghash::new(&key);
            g.update_padded(&data[..len]);
            let want = g.finalize(len, 0);
            let mut y = accel.ghash_padded(0, &data[..len]);
            y = accel.mul_h(y ^ ((len as u128 * 8) << 64));
            assert_eq!(y.to_be_bytes(), want, "len={len}");
        }
    }
}
