//! GHASH — the GF(2^128) universal hash underlying GCM authentication.

/// Multiplication in GF(2^128) with GCM's reduction polynomial
/// `x^128 + x^7 + x^2 + x + 1` and bit ordering (SP 800-38D §6.3).
///
/// Operands are the big-endian integer interpretation of 16-byte blocks.
pub fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Multiplication by `x` (one bit position) in GCM's reflected
/// representation: a right shift plus conditional reduction.
fn mulx(v: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    (v >> 1) ^ if v & 1 == 1 { R } else { 0 }
}

/// Precomputed multiplication tables for a fixed hash subkey `H`
/// (Shoup's 4-bit method).
///
/// Building the tables costs a handful of shift/xor passes once per key;
/// every subsequent block multiplication then takes 32 table lookups
/// instead of [`gf_mul`]'s 128 shift/xor rounds. [`crate::Aes256Gcm`]
/// builds one of these per key, so long-lived sessions amortize the setup
/// across every sealed message.
#[derive(Debug, Clone)]
pub struct GhashKey {
    /// `tbl[n]` = (the degree-3 polynomial encoded by nibble `n`) · H.
    /// Nibble bit 8 is the group's x^0 coefficient, bit 1 its x^3.
    tbl: [u128; 16],
    /// `red[j]` = x^4 · (the 4 low bits `j` shifted out by a 4-bit step),
    /// i.e. the reduction completing `mulx^4(v) = (v >> 4) ^ red[v & 0xF]`.
    red: [u128; 16],
}

impl GhashKey {
    /// Precomputes the tables for the hash subkey `H = E(K, 0^128)`.
    pub fn new(h: &[u8; 16]) -> Self {
        let h0 = u128::from_be_bytes(*h); // H · x^0
        let h1 = mulx(h0); // H · x^1
        let h2 = mulx(h1); // H · x^2
        let h3 = mulx(h2); // H · x^3
        let mut tbl = [0u128; 16];
        for (n, entry) in tbl.iter_mut().enumerate() {
            let mut v = 0;
            if n & 8 != 0 {
                v ^= h0;
            }
            if n & 4 != 0 {
                v ^= h1;
            }
            if n & 2 != 0 {
                v ^= h2;
            }
            if n & 1 != 0 {
                v ^= h3;
            }
            *entry = v;
        }
        let mut red = [0u128; 16];
        for (j, entry) in red.iter_mut().enumerate() {
            let mut v = j as u128;
            for _ in 0..4 {
                v = mulx(v);
            }
            *entry = v;
        }
        GhashKey { tbl, red }
    }

    /// Computes `x · H` via the precomputed tables.
    ///
    /// Horner evaluation 4 bits at a time: integer nibble 0 of `x` holds the
    /// highest powers (x^124..x^127) in the reflected representation, so the
    /// scan runs from the least significant nibble upward, multiplying the
    /// accumulator by x^4 between steps.
    pub fn mul(&self, x: u128) -> u128 {
        let mut z = 0u128;
        for i in 0..32 {
            z = (z >> 4) ^ self.red[(z & 0xF) as usize];
            z ^= self.tbl[((x >> (4 * i)) & 0xF) as usize];
        }
        z
    }
}

/// Incremental GHASH over a byte stream, zero-padding each logical section
/// to the 16-byte block boundary as required by GCM.
#[derive(Debug, Clone)]
pub struct Ghash<'k> {
    key: &'k GhashKey,
    y: u128,
}

impl<'k> Ghash<'k> {
    /// Creates a GHASH over the precomputed subkey tables.
    pub fn new(key: &'k GhashKey) -> Self {
        Ghash { key, y: 0 }
    }

    /// Absorbs `data`, zero-padded to a whole number of blocks.
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.y = self.key.mul(self.y ^ u128::from_be_bytes(block));
        }
    }

    /// Absorbs the final length block (`len(aad) || len(ciphertext)`, both
    /// in bits) and returns the digest.
    pub fn finalize(mut self, aad_len_bytes: usize, ct_len_bytes: usize) -> [u8; 16] {
        let lens = ((aad_len_bytes as u128 * 8) << 64) | (ct_len_bytes as u128 * 8);
        self.y = self.key.mul(self.y ^ lens);
        self.y.to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_identity() {
        assert_eq!(gf_mul(0, 0x1234), 0);
        assert_eq!(gf_mul(0x1234, 0), 0);
        // The multiplicative identity in GCM's representation is the block
        // 0x80000...0 (the polynomial "1" with reflected bits).
        let one = 1u128 << 127;
        let x = 0xdeadbeef_u128 << 64 | 0x12345678;
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
    }

    #[test]
    fn mul_is_commutative() {
        let a = u128::from_be_bytes(*b"0123456789abcdef");
        let b = u128::from_be_bytes(*b"fedcba9876543210");
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn mul_distributes_over_xor() {
        let a = 0x0123_4567_89ab_cdef_u128 << 40;
        let b = 0xfeed_face_cafe_beef_u128 << 17;
        let c = 0x1111_2222_3333_4444_u128 << 60;
        assert_eq!(gf_mul(a ^ b, c), gf_mul(a, c) ^ gf_mul(b, c));
    }

    #[test]
    fn ghash_empty_input_is_zero_times_h() {
        let key = GhashKey::new(&[0xab; 16]);
        let g = Ghash::new(&key);
        // Empty AAD and ciphertext: digest = GHASH of just the length block
        // with both lengths zero = gf_mul(0, H) = 0.
        assert_eq!(g.finalize(0, 0), [0u8; 16]);
    }

    #[test]
    fn ghash_padding_separates_sections() {
        // Same bytes split differently across padded sections must differ.
        let key = GhashKey::new(&[0x42; 16]);
        let mut g1 = Ghash::new(&key);
        g1.update_padded(&[1, 2, 3]);
        g1.update_padded(&[4, 5, 6]);
        let d1 = g1.finalize(3, 3);

        let mut g2 = Ghash::new(&key);
        g2.update_padded(&[1, 2, 3, 4, 5, 6]);
        let d2 = g2.finalize(6, 0);
        assert_ne!(d1, d2);
    }

    #[test]
    fn table_mul_matches_bitwise_mul() {
        // The 4-bit-table fast path against the bitwise reference, across
        // subkeys and operands chosen to exercise every nibble position,
        // both reduction paths, and the extreme bit positions.
        let mut samples = vec![0u128, 1, 1 << 127, u128::MAX, 0xe1 << 120];
        let mut x = 0x0123_4567_89ab_cdef_fedc_ba98_7654_3210u128;
        for _ in 0..64 {
            // xorshift: a cheap deterministic scatter over the whole width.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            samples.push(x);
        }
        for &h in &samples {
            let key = GhashKey::new(&h.to_be_bytes());
            for &v in &samples {
                assert_eq!(key.mul(v), gf_mul(v, h), "h={h:032x} v={v:032x}");
            }
        }
    }
}
