//! GHASH — the GF(2^128) universal hash underlying GCM authentication.

/// Multiplication in GF(2^128) with GCM's reduction polynomial
/// `x^128 + x^7 + x^2 + x + 1` and bit ordering (SP 800-38D §6.3).
///
/// Operands are the big-endian integer interpretation of 16-byte blocks.
pub fn gf_mul(x: u128, y: u128) -> u128 {
    const R: u128 = 0xe1 << 120;
    let mut z = 0u128;
    let mut v = x;
    for i in 0..128 {
        if (y >> (127 - i)) & 1 == 1 {
            z ^= v;
        }
        let lsb = v & 1;
        v >>= 1;
        if lsb == 1 {
            v ^= R;
        }
    }
    z
}

/// Incremental GHASH over a byte stream, zero-padding each logical section
/// to the 16-byte block boundary as required by GCM.
#[derive(Debug, Clone)]
pub struct Ghash {
    h: u128,
    y: u128,
}

impl Ghash {
    /// Creates a GHASH keyed by the hash subkey `H = E(K, 0^128)`.
    pub fn new(h: &[u8; 16]) -> Self {
        Ghash { h: u128::from_be_bytes(*h), y: 0 }
    }

    /// Absorbs `data`, zero-padded to a whole number of blocks.
    pub fn update_padded(&mut self, data: &[u8]) {
        for chunk in data.chunks(16) {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            self.y = gf_mul(self.y ^ u128::from_be_bytes(block), self.h);
        }
    }

    /// Absorbs the final length block (`len(aad) || len(ciphertext)`, both
    /// in bits) and returns the digest.
    pub fn finalize(mut self, aad_len_bytes: usize, ct_len_bytes: usize) -> [u8; 16] {
        let lens = ((aad_len_bytes as u128 * 8) << 64) | (ct_len_bytes as u128 * 8);
        self.y = gf_mul(self.y ^ lens, self.h);
        self.y.to_be_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mul_by_zero_and_identity() {
        assert_eq!(gf_mul(0, 0x1234), 0);
        assert_eq!(gf_mul(0x1234, 0), 0);
        // The multiplicative identity in GCM's representation is the block
        // 0x80000...0 (the polynomial "1" with reflected bits).
        let one = 1u128 << 127;
        let x = 0xdeadbeef_u128 << 64 | 0x12345678;
        assert_eq!(gf_mul(x, one), x);
        assert_eq!(gf_mul(one, x), x);
    }

    #[test]
    fn mul_is_commutative() {
        let a = u128::from_be_bytes(*b"0123456789abcdef");
        let b = u128::from_be_bytes(*b"fedcba9876543210");
        assert_eq!(gf_mul(a, b), gf_mul(b, a));
    }

    #[test]
    fn mul_distributes_over_xor() {
        let a = 0x0123_4567_89ab_cdef_u128 << 40;
        let b = 0xfeed_face_cafe_beef_u128 << 17;
        let c = 0x1111_2222_3333_4444_u128 << 60;
        assert_eq!(gf_mul(a ^ b, c), gf_mul(a, c) ^ gf_mul(b, c));
    }

    #[test]
    fn ghash_empty_input_is_zero_times_h() {
        let g = Ghash::new(&[0xab; 16]);
        // Empty AAD and ciphertext: digest = GHASH of just the length block
        // with both lengths zero = gf_mul(0, H) = 0.
        assert_eq!(g.finalize(0, 0), [0u8; 16]);
    }

    #[test]
    fn ghash_padding_separates_sections() {
        // Same bytes split differently across padded sections must differ.
        let h = [0x42; 16];
        let mut g1 = Ghash::new(&h);
        g1.update_padded(&[1, 2, 3]);
        g1.update_padded(&[4, 5, 6]);
        let d1 = g1.finalize(3, 3);

        let mut g2 = Ghash::new(&h);
        g2.update_padded(&[1, 2, 3, 4, 5, 6]);
        let d2 = g2.finalize(6, 0);
        assert_ne!(d1, d2);
    }
}
