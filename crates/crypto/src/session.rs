//! Session-level sealing with automatic nonce sequencing.
//!
//! In the reproduced system every (node, peer) pair shares a symmetric key
//! provisioned at attestation time (out of band for the simulation). A
//! [`SealingKey`] derives a fresh 96-bit nonce for every message from a
//! direction byte and a monotonically increasing counter, which removes the
//! possibility of nonce reuse — GCM's one catastrophic failure mode.

use std::ops::Range;
use std::sync::Arc;

use crate::backend::CryptoBackend;
use crate::gcm::{Aes256Gcm, AuthError, NONCE_LEN, TAG_LEN};

/// Bytes of wire framing around each sealed payload:
/// `direction (1) || seq (8)` header plus the GCM tag.
const HEADER_LEN: usize = 9;

/// A directional AEAD session: one endpoint's sending half of a shared key.
///
/// Nonces are `direction (1 byte) || zeros (3 bytes) || counter (8 bytes,
/// big-endian)`. The two endpoints of a key must use distinct direction
/// bytes so their nonce spaces never collide.
///
/// # Examples
///
/// ```
/// use tt_crypto::SealingKey;
///
/// let key = [0x11u8; 32];
/// let mut node = SealingKey::new(&key, 0);
/// let mut authority = SealingKey::new(&key, 1);
///
/// let wire = node.seal(b"", b"calibration request s=1s");
/// let opened = authority.open(b"", &wire).unwrap();
/// assert_eq!(opened, b"calibration request s=1s");
/// ```
#[derive(Debug, Clone)]
pub struct SealingKey {
    /// Shared with the opposite-direction session of the same key
    /// ([`SealingKey::pair`]): one AES round-key schedule and one GHASH
    /// table/power set per link instead of one per direction.
    aead: Arc<Aes256Gcm>,
    direction: u8,
    next_seq: u64,
    /// Counter-block scratch for the batch paths (J0s + keystream),
    /// reused across batches so steady state never allocates.
    blocks: Vec<[u8; 16]>,
}

impl SealingKey {
    /// Creates a sealing session over `key`, tagged with this endpoint's
    /// `direction` byte.
    pub fn new(key: &[u8; 32], direction: u8) -> Self {
        Self::over(Arc::new(Aes256Gcm::new(key)), direction)
    }

    /// Creates both directional sessions of one shared key in a single
    /// key setup: the AES schedule and GHASH tables are computed once
    /// and shared, not duplicated per direction.
    ///
    /// Returns `(direction 0, direction 1)`.
    pub fn pair(key: &[u8; 32]) -> (Self, Self) {
        let aead = Arc::new(Aes256Gcm::new(key));
        (Self::over(Arc::clone(&aead), 0), Self::over(aead, 1))
    }

    /// [`SealingKey::pair`] pinned to a specific backend — differential
    /// tests only; production uses the process-wide detection.
    pub fn pair_on(key: &[u8; 32], backend: CryptoBackend) -> (Self, Self) {
        let aead = Arc::new(Aes256Gcm::with_backend(key, backend));
        (Self::over(Arc::clone(&aead), 0), Self::over(aead, 1))
    }

    fn over(aead: Arc<Aes256Gcm>, direction: u8) -> Self {
        SealingKey { aead, direction, next_seq: 0, blocks: Vec::new() }
    }

    /// The backend the underlying AEAD runs on.
    pub fn backend(&self) -> CryptoBackend {
        self.aead.backend()
    }

    /// Sequence number that the next [`SealingKey::seal`] will consume.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn nonce(direction: u8, seq: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[0] = direction;
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Seals `plaintext`, embedding the sequence number in the wire format:
    /// `direction (1) || seq (8) || ciphertext || tag`.
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut wire = Vec::with_capacity(9 + plaintext.len() + 16);
        self.seal_into(aad, plaintext, &mut wire);
        wire
    }

    /// Allocation-free [`SealingKey::seal`]: appends the wire message to
    /// `out` (a reused scratch buffer on the hot path).
    pub fn seal_into(&mut self, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nonce = Self::nonce(self.direction, seq);
        out.push(self.direction);
        out.extend_from_slice(&seq.to_be_bytes());
        self.aead.seal_into(&nonce, aad, plaintext, out);
    }

    /// Opens a wire message sealed by the *other* endpoint of this key.
    ///
    /// # Errors
    ///
    /// Fails if the message is malformed, was sealed by this same direction
    /// (reflection), or does not authenticate.
    pub fn open(&self, aad: &[u8], wire: &[u8]) -> Result<Vec<u8>, AuthError> {
        let mut out = Vec::new();
        self.open_into(aad, wire, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SealingKey::open`]: appends the plaintext to `out`,
    /// leaving it untouched on failure.
    ///
    /// # Errors
    ///
    /// Fails exactly as [`SealingKey::open`] does.
    pub fn open_into(&self, aad: &[u8], wire: &[u8], out: &mut Vec<u8>) -> Result<(), AuthError> {
        if wire.len() < 9 {
            return Err(AuthError);
        }
        let direction = wire[0];
        if direction == self.direction {
            // Reflected message: an attacker replaying our own traffic back.
            return Err(AuthError);
        }
        let seq = u64::from_be_bytes(wire[1..9].try_into().expect("length checked"));
        let nonce = Self::nonce(direction, seq);
        self.aead.open_into(&nonce, aad, &wire[9..], out)
    }

    /// Seals a whole batch of plaintexts in one pass, appending one wire
    /// frame per part to `out` and pushing each frame's byte range into
    /// `frames`.
    ///
    /// `parts` are ranges into `plain`; every part gets the same `aad`
    /// and a consecutive sequence number, exactly as if
    /// [`SealingKey::seal_into`] had been called once per part — the
    /// produced bytes are identical. The difference is scheduling: the
    /// batch's sequence numbers are known up front, so *all* counter
    /// blocks (each frame's `J0` for the tag mask plus its keystream)
    /// are encrypted in a single backend dispatch, keeping the AES-NI
    /// pipeline full across frame boundaries instead of draining it at
    /// every tag.
    pub fn seal_batch_into(
        &mut self,
        aad: &[u8],
        plain: &[u8],
        parts: &[Range<usize>],
        out: &mut Vec<u8>,
        frames: &mut Vec<Range<usize>>,
    ) {
        // Stage every counter block of the batch: J0 then the keystream
        // blocks, per frame, back to back.
        self.blocks.clear();
        for (i, part) in parts.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            let j0 = Aes256Gcm::j0(&Self::nonce(self.direction, seq));
            self.blocks.push(j0);
            let mut counter = 1u32;
            for _ in 0..part.len().div_ceil(16) {
                counter = counter.wrapping_add(1);
                let mut b = j0;
                b[12..].copy_from_slice(&counter.to_be_bytes());
                self.blocks.push(b);
            }
        }
        self.aead.encrypt_counter_blocks(&mut self.blocks);
        // Emit the frames against the precomputed blocks.
        let mut base = 0;
        for (i, part) in parts.iter().enumerate() {
            let seq = self.next_seq + i as u64;
            let start = out.len();
            out.push(self.direction);
            out.extend_from_slice(&seq.to_be_bytes());
            let ct_start = out.len();
            let pt = &plain[part.clone()];
            out.extend_from_slice(pt);
            let nblocks = pt.len().div_ceil(16);
            let ej0 = self.blocks[base];
            let ks = self.blocks[base + 1..base + 1 + nblocks].iter().flatten();
            for (b, k) in out[ct_start..].iter_mut().zip(ks) {
                *b ^= k;
            }
            let tag = self.aead.tag_with_ej0(&ej0, aad, &out[ct_start..]);
            out.extend_from_slice(&tag);
            frames.push(start..out.len());
            base += 1 + nblocks;
        }
        self.next_seq += parts.len() as u64;
    }

    /// Opens a whole batch of wire frames in one pass — the receiving
    /// twin of [`SealingKey::seal_batch_into`].
    ///
    /// `frames` are ranges into `wire`, one sealed frame each. On
    /// success every plaintext is appended to `out` with its range
    /// pushed into `parts`, in frame order.
    ///
    /// # Errors
    ///
    /// All-or-nothing: if *any* frame is malformed, reflected, or fails
    /// authentication, nothing is appended and [`AuthError`] is
    /// returned — a batch is one logical unit, and verify-then-decrypt
    /// must hold for the whole of it.
    pub fn open_batch_into(
        &mut self,
        aad: &[u8],
        wire: &[u8],
        frames: &[Range<usize>],
        out: &mut Vec<u8>,
        parts: &mut Vec<Range<usize>>,
    ) -> Result<(), AuthError> {
        // Pass 1: validate framing and stage every counter block.
        self.blocks.clear();
        for frame in frames {
            let f = wire.get(frame.clone()).ok_or(AuthError)?;
            if f.len() < HEADER_LEN + TAG_LEN {
                return Err(AuthError);
            }
            let direction = f[0];
            if direction == self.direction {
                // Reflected frame: our own traffic replayed back at us.
                return Err(AuthError);
            }
            let seq = u64::from_be_bytes(f[1..9].try_into().expect("length checked"));
            let j0 = Aes256Gcm::j0(&Self::nonce(direction, seq));
            self.blocks.push(j0);
            let ct_len = f.len() - HEADER_LEN - TAG_LEN;
            let mut counter = 1u32;
            for _ in 0..ct_len.div_ceil(16) {
                counter = counter.wrapping_add(1);
                let mut b = j0;
                b[12..].copy_from_slice(&counter.to_be_bytes());
                self.blocks.push(b);
            }
        }
        self.aead.encrypt_counter_blocks(&mut self.blocks);
        // Pass 2: verify every tag before any plaintext is written.
        let mut base = 0;
        let mut diff = 0u8;
        for frame in frames {
            let f = &wire[frame.clone()];
            let (ct, tag) = f[HEADER_LEN..].split_at(f.len() - HEADER_LEN - TAG_LEN);
            let expected = self.aead.tag_with_ej0(&self.blocks[base], aad, ct);
            for (a, b) in expected.iter().zip(tag.iter()) {
                diff |= a ^ b;
            }
            base += 1 + ct.len().div_ceil(16);
        }
        if diff != 0 {
            return Err(AuthError);
        }
        // Pass 3: decrypt.
        base = 0;
        for frame in frames {
            let f = &wire[frame.clone()];
            let ct = &f[HEADER_LEN..f.len() - TAG_LEN];
            let start = out.len();
            out.extend_from_slice(ct);
            let nblocks = ct.len().div_ceil(16);
            let ks = self.blocks[base + 1..base + 1 + nblocks].iter().flatten();
            for (b, k) in out[start..].iter_mut().zip(ks) {
                *b ^= k;
            }
            parts.push(start..out.len());
            base += 1 + nblocks;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let key = [0xAB; 32];
        let mut a = SealingKey::new(&key, 0);
        let mut b = SealingKey::new(&key, 1);
        let w1 = a.seal(b"x", b"hello");
        let w2 = b.seal(b"x", b"world");
        assert_eq!(b.open(b"x", &w1).unwrap(), b"hello");
        assert_eq!(a.open(b"x", &w2).unwrap(), b"world");
    }

    #[test]
    fn nonces_never_repeat_across_messages() {
        let key = [1u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let w1 = a.seal(b"", b"same");
        let w2 = a.seal(b"", b"same");
        assert_ne!(w1, w2, "sequence numbers must change the ciphertext");
        assert_eq!(a.next_seq(), 2);
    }

    #[test]
    fn reflection_is_rejected() {
        let key = [2u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let w = a.seal(b"", b"ping");
        assert_eq!(a.open(b"", &w), Err(AuthError));
    }

    #[test]
    fn tampered_wire_is_rejected() {
        let key = [3u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let b = SealingKey::new(&key, 1);
        let mut w = a.seal(b"", b"payload");
        // Tamper with the embedded sequence number: nonce no longer matches.
        w[5] ^= 1;
        assert_eq!(b.open(b"", &w), Err(AuthError));
        // Too short.
        assert_eq!(b.open(b"", &w[..4]), Err(AuthError));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut a = SealingKey::new(&[4u8; 32], 0);
        let b = SealingKey::new(&[5u8; 32], 1);
        let w = a.seal(b"", b"payload");
        assert_eq!(b.open(b"", &w), Err(AuthError));
    }
}
