//! Session-level sealing with automatic nonce sequencing.
//!
//! In the reproduced system every (node, peer) pair shares a symmetric key
//! provisioned at attestation time (out of band for the simulation). A
//! [`SealingKey`] derives a fresh 96-bit nonce for every message from a
//! direction byte and a monotonically increasing counter, which removes the
//! possibility of nonce reuse — GCM's one catastrophic failure mode.

use crate::gcm::{Aes256Gcm, AuthError, NONCE_LEN};

/// A directional AEAD session: one endpoint's sending half of a shared key.
///
/// Nonces are `direction (1 byte) || zeros (3 bytes) || counter (8 bytes,
/// big-endian)`. The two endpoints of a key must use distinct direction
/// bytes so their nonce spaces never collide.
///
/// # Examples
///
/// ```
/// use tt_crypto::SealingKey;
///
/// let key = [0x11u8; 32];
/// let mut node = SealingKey::new(&key, 0);
/// let mut authority = SealingKey::new(&key, 1);
///
/// let wire = node.seal(b"", b"calibration request s=1s");
/// let opened = authority.open(b"", &wire).unwrap();
/// assert_eq!(opened, b"calibration request s=1s");
/// ```
#[derive(Debug, Clone)]
pub struct SealingKey {
    aead: Aes256Gcm,
    direction: u8,
    next_seq: u64,
}

impl SealingKey {
    /// Creates a sealing session over `key`, tagged with this endpoint's
    /// `direction` byte.
    pub fn new(key: &[u8; 32], direction: u8) -> Self {
        SealingKey { aead: Aes256Gcm::new(key), direction, next_seq: 0 }
    }

    /// Sequence number that the next [`SealingKey::seal`] will consume.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    fn nonce(direction: u8, seq: u64) -> [u8; NONCE_LEN] {
        let mut n = [0u8; NONCE_LEN];
        n[0] = direction;
        n[4..].copy_from_slice(&seq.to_be_bytes());
        n
    }

    /// Seals `plaintext`, embedding the sequence number in the wire format:
    /// `direction (1) || seq (8) || ciphertext || tag`.
    pub fn seal(&mut self, aad: &[u8], plaintext: &[u8]) -> Vec<u8> {
        let mut wire = Vec::with_capacity(9 + plaintext.len() + 16);
        self.seal_into(aad, plaintext, &mut wire);
        wire
    }

    /// Allocation-free [`SealingKey::seal`]: appends the wire message to
    /// `out` (a reused scratch buffer on the hot path).
    pub fn seal_into(&mut self, aad: &[u8], plaintext: &[u8], out: &mut Vec<u8>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        let nonce = Self::nonce(self.direction, seq);
        out.push(self.direction);
        out.extend_from_slice(&seq.to_be_bytes());
        self.aead.seal_into(&nonce, aad, plaintext, out);
    }

    /// Opens a wire message sealed by the *other* endpoint of this key.
    ///
    /// # Errors
    ///
    /// Fails if the message is malformed, was sealed by this same direction
    /// (reflection), or does not authenticate.
    pub fn open(&self, aad: &[u8], wire: &[u8]) -> Result<Vec<u8>, AuthError> {
        let mut out = Vec::new();
        self.open_into(aad, wire, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`SealingKey::open`]: appends the plaintext to `out`,
    /// leaving it untouched on failure.
    ///
    /// # Errors
    ///
    /// Fails exactly as [`SealingKey::open`] does.
    pub fn open_into(&self, aad: &[u8], wire: &[u8], out: &mut Vec<u8>) -> Result<(), AuthError> {
        if wire.len() < 9 {
            return Err(AuthError);
        }
        let direction = wire[0];
        if direction == self.direction {
            // Reflected message: an attacker replaying our own traffic back.
            return Err(AuthError);
        }
        let seq = u64::from_be_bytes(wire[1..9].try_into().expect("length checked"));
        let nonce = Self::nonce(direction, seq);
        self.aead.open_into(&nonce, aad, &wire[9..], out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_both_directions() {
        let key = [0xAB; 32];
        let mut a = SealingKey::new(&key, 0);
        let mut b = SealingKey::new(&key, 1);
        let w1 = a.seal(b"x", b"hello");
        let w2 = b.seal(b"x", b"world");
        assert_eq!(b.open(b"x", &w1).unwrap(), b"hello");
        assert_eq!(a.open(b"x", &w2).unwrap(), b"world");
    }

    #[test]
    fn nonces_never_repeat_across_messages() {
        let key = [1u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let w1 = a.seal(b"", b"same");
        let w2 = a.seal(b"", b"same");
        assert_ne!(w1, w2, "sequence numbers must change the ciphertext");
        assert_eq!(a.next_seq(), 2);
    }

    #[test]
    fn reflection_is_rejected() {
        let key = [2u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let w = a.seal(b"", b"ping");
        assert_eq!(a.open(b"", &w), Err(AuthError));
    }

    #[test]
    fn tampered_wire_is_rejected() {
        let key = [3u8; 32];
        let mut a = SealingKey::new(&key, 0);
        let b = SealingKey::new(&key, 1);
        let mut w = a.seal(b"", b"payload");
        // Tamper with the embedded sequence number: nonce no longer matches.
        w[5] ^= 1;
        assert_eq!(b.open(b"", &w), Err(AuthError));
        // Too short.
        assert_eq!(b.open(b"", &w[..4]), Err(AuthError));
    }

    #[test]
    fn wrong_key_is_rejected() {
        let mut a = SealingKey::new(&[4u8; 32], 0);
        let b = SealingKey::new(&[5u8; 32], 1);
        let w = a.seal(b"", b"payload");
        assert_eq!(b.open(b"", &w), Err(AuthError));
    }
}
