//! # tt-crypto — AES-256-GCM for the Triad protocol messages
//!
//! The paper encrypts all protocol communications with AES-256-GCM (§IV,
//! using the Maxul/SGX-AES-256 library in the original C++ implementation).
//! This crate re-implements the AEAD from scratch so the simulated on-path
//! attacker genuinely operates on ciphertext and timing only — the F+/F–
//! attacks in `attacks` never parse message contents, exactly as in the
//! paper's threat model.
//!
//! ## Scope and caveats
//!
//! This is **simulation-grade** cryptography: functionally correct (NIST
//! SP 800-38D test vectors pass) but not hardened against timing side
//! channels, and the portable table-based AES path is used without
//! cache-attack countermeasures. Do not lift it into a real TEE runtime.
//!
//! ## Backends
//!
//! Two implementations of the primitives coexist and produce
//! byte-identical outputs: the portable `#![deny(unsafe_code)]` table
//! path (always available, the differential oracle) and a runtime-
//! detected AES-NI + PCLMULQDQ fast path confined to `backend.rs` /
//! `clmul.rs`. See [`CryptoBackend`].
//!
//! ## Layers
//!
//! - [`Aes256`]: the raw block cipher (FIPS-197),
//! - [`Aes256Gcm`]: one-shot AEAD seal/open (SP 800-38D),
//! - [`SealingKey`]: per-session wrapper with automatic nonce sequencing,
//!   reflection rejection, and one-pass batch sealing — what the
//!   protocol crates actually use.

#![deny(unsafe_code)] // allowed, with justification, only in clmul.rs
#![warn(missing_docs)]

mod aes;
mod backend;
#[cfg(all(target_arch = "x86_64", not(miri)))]
mod clmul;
mod gcm;
mod ghash;
pub mod hex;
mod session;

pub use aes::Aes256;
pub use backend::CryptoBackend;
pub use gcm::{Aes256Gcm, AuthError, NONCE_LEN, TAG_LEN};
pub use ghash::{gf_mul, Ghash, GhashKey};
pub use session::SealingKey;
