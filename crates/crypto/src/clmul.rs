//! x86-64 AES-NI / PCLMULQDQ kernels — the only unsafe code in the crate.
//!
//! Everything here is `#[target_feature]`-gated and therefore unsafe to
//! call: callers must have proven at runtime that the CPU supports the
//! `aes` and `pclmulqdq` feature bits. That proof lives in exactly one
//! place — [`crate::backend::CryptoBackend::active`] — and the safe
//! wrappers in `backend.rs` are the only callers, so the unsafety is
//! confined to this module pair (enforced by the workspace `tt-lint`
//! `unsafe-intrinsics` lint).
//!
//! The kernels are *value-identical* to the portable table path:
//!
//! - AES: `aesenc`/`aesenclast` over the same FIPS-197 round keys the
//!   table path expands (the schedule bytes are shared, not re-derived).
//! - GHASH: a carry-less multiply in GCM's reflected bit order. The
//!   64×64 products come from `pclmulqdq`; the Karatsuba combination,
//!   the reflection shift, and the two-fold reduction by
//!   `x^128 + x^7 + x^2 + x + 1` are plain `u128` arithmetic, which keeps
//!   the algebra auditable against [`crate::ghash::gf_mul`].
//!
//! Both are differentially tested against the portable implementations
//! (unit tests below plus `tests/props.rs`), so a wrong constant here
//! cannot survive `cargo test`.

// tt-lint: allow-file(unsafe-intrinsics) — designated intrinsics module; every entry point is feature-gated and only reachable through backend.rs detection.
#![allow(unsafe_code)]

use core::arch::x86_64::{
    __m128i, _mm_aesenc_si128, _mm_aesenclast_si128, _mm_clmulepi64_si128, _mm_loadu_si128,
    _mm_set_epi64x, _mm_slli_si128, _mm_srli_si128, _mm_storeu_si128, _mm_xor_si128,
};

/// Number of AES-256 round keys (initial whitening + 13 rounds + last).
pub(crate) const ROUND_KEYS: usize = 15;

/// Precomputed GHASH key powers `[H, H², …, H^POWERS]`: 4-way aggregation
/// in the streaming body, whole-digest aggregation for frames of up to
/// `POWERS` blocks (aad + ciphertext + length block).
pub(crate) const POWERS: usize = 8;

#[inline(always)]
fn load(b: &[u8; 16]) -> __m128i {
    // SAFETY: `b` is a valid 16-byte read; `loadu` has no alignment
    // requirement. SSE2 is part of the x86-64 baseline.
    unsafe { _mm_loadu_si128(b.as_ptr().cast()) }
}

#[inline(always)]
fn store(b: &mut [u8; 16], v: __m128i) {
    // SAFETY: `b` is a valid 16-byte write; `storeu` is unaligned-safe.
    unsafe { _mm_storeu_si128(b.as_mut_ptr().cast(), v) }
}

/// Encrypts every 16-byte block in place with AES-256, eight blocks in
/// flight so the `aesenc` pipeline stays full.
///
/// `rk` is the expanded schedule in FIPS-197 byte order (exactly the
/// bytes the table path XORs in `add_round_key`), so the output is
/// bit-identical to [`crate::Aes256::encrypt_block`].
///
/// # Safety
///
/// The CPU must support the `aes` feature (runtime-detected by the
/// backend before any `Accel` state exists).
#[target_feature(enable = "aes")]
pub(crate) unsafe fn encrypt_blocks(rk: &[[u8; 16]; ROUND_KEYS], blocks: &mut [[u8; 16]]) {
    let k: [__m128i; ROUND_KEYS] = core::array::from_fn(|i| load(&rk[i]));
    for chunk in blocks.chunks_mut(8) {
        // Short flights (protocol frames are 2–5 blocks) interleave just
        // like full ones: every lane is independent, so the `aesenc`s of
        // a round issue back to back and pipeline across lanes.
        let n = chunk.len();
        let mut s = [k[0]; 8];
        for i in 0..n {
            s[i] = _mm_xor_si128(load(&chunk[i]), k[0]);
        }
        for key in &k[1..14] {
            for lane in &mut s[..n] {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (lane, out) in s.into_iter().zip(chunk.iter_mut()) {
            store(out, _mm_aesenclast_si128(lane, k[14]));
        }
    }
}

/// Generates the CTR keystream for one frame and XORs it into `data`
/// in place, returning `E(J0)` (the tag mask).
///
/// Virtual block 0 is `J0` itself; block `i` is `J0` with the 32-bit
/// big-endian counter advanced by `i`. With `include_j0 = false` the
/// `J0` lane is skipped (the open path already derived the mask during
/// verification). Flights of eight keep the `aesenc` pipeline full, and
/// whole-register XOR replaces the byte loop of the portable path.
#[target_feature(enable = "aes")]
unsafe fn cipher_frame(
    k: &[__m128i; ROUND_KEYS],
    j0: &[u8; 16],
    data: &mut [u8],
    include_j0: bool,
) -> __m128i {
    let counter = u32::from_be_bytes([j0[12], j0[13], j0[14], j0[15]]);
    let total = data.len().div_ceil(16) + 1;
    let mut ej0 = k[0];
    let mut done = usize::from(!include_j0);
    while done < total {
        let flight = (total - done).min(8);
        let mut s = [k[0]; 8];
        for (i, lane) in s[..flight].iter_mut().enumerate() {
            let v = done + i;
            let mut b = *j0;
            if v > 0 {
                b[12..].copy_from_slice(&counter.wrapping_add(v as u32).to_be_bytes());
            }
            *lane = _mm_xor_si128(load(&b), k[0]);
        }
        for key in &k[1..14] {
            for lane in &mut s[..flight] {
                *lane = _mm_aesenc_si128(*lane, *key);
            }
        }
        for (i, lane) in s[..flight].iter().enumerate() {
            let v = done + i;
            let ks = _mm_aesenclast_si128(*lane, k[14]);
            if v == 0 {
                ej0 = ks;
                continue;
            }
            let off = (v - 1) * 16;
            let end = data.len().min(off + 16);
            if end - off == 16 {
                let chunk: &mut [u8; 16] = (&mut data[off..end]).try_into().expect("16B");
                store(chunk, _mm_xor_si128(load(chunk), ks));
            } else {
                let mut kb = [0u8; 16];
                store(&mut kb, ks);
                for (b, kk) in data[off..end].iter_mut().zip(kb.iter()) {
                    *b ^= kk;
                }
            }
        }
        done += flight;
    }
    ej0
}

/// Seals one frame in a single feature-gated call: CTR-encrypts
/// `data` (plaintext in, ciphertext out), GHASHes `aad ∥ ct ∥ lens`,
/// and returns the masked tag. One call boundary and one round-key
/// load per frame, with AES, XOR, and GHASH all in registers.
///
/// # Safety
///
/// The CPU must support the `aes` and `pclmulqdq` features.
#[target_feature(enable = "aes,pclmulqdq")]
pub(crate) unsafe fn seal_frame(
    rk: &[[u8; 16]; ROUND_KEYS],
    powers: &[u128; POWERS],
    j0: &[u8; 16],
    aad: &[u8],
    data: &mut [u8],
) -> [u8; 16] {
    let k: [__m128i; ROUND_KEYS] = core::array::from_fn(|i| load(&rk[i]));
    let ej0 = cipher_frame(&k, j0, data, true);
    let digest = ghash_tag(powers, aad, data);
    let mut mask = [0u8; 16];
    store(&mut mask, ej0);
    (digest ^ u128::from_be_bytes(mask)).to_be_bytes()
}

/// Opens one frame in a single feature-gated call: GHASHes the
/// ciphertext, derives `E(J0)`, compares the tag branch-free, and only
/// on success CTR-decrypts `data` in place. Returns whether the tag
/// verified; on `false`, `data` still holds the ciphertext.
///
/// # Safety
///
/// The CPU must support the `aes` and `pclmulqdq` features.
#[target_feature(enable = "aes,pclmulqdq")]
pub(crate) unsafe fn open_frame(
    rk: &[[u8; 16]; ROUND_KEYS],
    powers: &[u128; POWERS],
    j0: &[u8; 16],
    aad: &[u8],
    data: &mut [u8],
    tag: &[u8],
) -> bool {
    let k: [__m128i; ROUND_KEYS] = core::array::from_fn(|i| load(&rk[i]));
    let digest = ghash_tag(powers, aad, data);
    let mut e = _mm_xor_si128(load(j0), k[0]);
    for key in &k[1..14] {
        e = _mm_aesenc_si128(e, *key);
    }
    let mut mask = [0u8; 16];
    store(&mut mask, _mm_aesenclast_si128(e, k[14]));
    let expected = (digest ^ u128::from_be_bytes(mask)).to_be_bytes();
    let mut diff = 0u8;
    for (a, b) in expected.iter().zip(tag.iter()) {
        diff |= a ^ b;
    }
    if diff != 0 {
        return false;
    }
    cipher_frame(&k, j0, data, false);
    true
}

#[inline(always)]
fn to_u128(v: __m128i) -> u128 {
    let mut out = [0u8; 16];
    // SAFETY: 16-byte unaligned store into a local array.
    unsafe { _mm_storeu_si128(out.as_mut_ptr().cast(), v) };
    u128::from_le_bytes(out)
}

#[inline(always)]
fn from_u128(x: u128) -> __m128i {
    // SAFETY: `set_epi64x` only moves GPRs into an XMM register (SSE2,
    // x86-64 baseline).
    unsafe { _mm_set_epi64x((x >> 64) as i64, x as i64) }
}

/// 128×128 → 256 carry-less multiply (schoolbook: four `pclmulqdq`s,
/// no cross-lane dependencies until the final XOR).
///
/// Returns `(high, low)` halves of the unreduced 256-bit product, kept
/// in XMM registers so callers can XOR-aggregate many products without
/// round-tripping through memory; [`reduce`] converts to scalar once.
#[inline]
#[target_feature(enable = "pclmulqdq")]
fn mul_wide(a: __m128i, b: __m128i) -> (__m128i, __m128i) {
    let lo = _mm_clmulepi64_si128(a, b, 0x00);
    let hi = _mm_clmulepi64_si128(a, b, 0x11);
    // Carry-less: the cross term folds in with XOR, no carries to ripple.
    let mid = _mm_xor_si128(_mm_clmulepi64_si128(a, b, 0x01), _mm_clmulepi64_si128(a, b, 0x10));
    (_mm_xor_si128(hi, _mm_srli_si128(mid, 8)), _mm_xor_si128(lo, _mm_slli_si128(mid, 8)))
}

/// Reduces an unreduced 256-bit product (as XMM `(high, low)` halves)
/// to GF(2^128) in GCM's reflected bit order.
///
/// The operands fed to [`mul_wide`] are bit-reflected (SP 800-38D block
/// order: coefficient `k` lives at bit `127 - k`), so the raw product is
/// the reflection of the true polynomial product *shifted down by one*
/// — hence the 256-bit left-shift first. The two folds then apply
/// `x^128 ≡ x^7 + x^2 + x + 1 (mod g)`; in reflected order multiplying
/// by `x^k` is a right shift by `k`, and the bits a fold pushes past the
/// 128-bit boundary are collected and folded once more (the second
/// residue is at most degree 12, so two folds always suffice).
#[inline]
fn reduce(v_hi: __m128i, v_lo: __m128i) -> u128 {
    let (p_hi, p_lo) = (to_u128(v_hi), to_u128(v_lo));
    // Undo the reflection offset: product of two reflected operands sits
    // one bit low in the 256-bit register pair.
    let q_hi = (p_hi << 1) | (p_lo >> 127);
    let q_lo = p_lo << 1;
    // Fold 1: the high 128 coefficients (held, reflected, in q_lo).
    let e_hi = q_lo ^ (q_lo >> 1) ^ (q_lo >> 2) ^ (q_lo >> 7);
    let e_lo = (q_lo << 127) ^ (q_lo << 126) ^ (q_lo << 121);
    // Fold 2: the ≤ 7 residual bits the first fold spilled back out.
    (q_hi ^ e_hi) ^ e_lo ^ (e_lo >> 1) ^ (e_lo >> 2) ^ (e_lo >> 7)
}

/// GF(2^128) multiply in GCM's representation — the carry-less-multiply
/// twin of [`crate::ghash::gf_mul`].
///
/// # Safety
///
/// The CPU must support the `pclmulqdq` feature.
#[cfg(test)]
#[target_feature(enable = "pclmulqdq")]
pub(crate) unsafe fn gf_mul_clmul(x: u128, y: u128) -> u128 {
    let (hi, lo) = mul_wide(from_u128(x), from_u128(y));
    reduce(hi, lo)
}

/// Absorbs `data` into a GHASH accumulator `y`, zero-padding the final
/// partial block, using 4-way aggregated reduction.
///
/// `powers` is `[H, H², H³, H⁴]`. Four blocks at a time the update
///
/// ```text
/// y' = (((((y ⊕ B₀)·H ⊕ B₁)·H ⊕ B₂)·H ⊕ B₃)·H
///    = (y ⊕ B₀)·H⁴ ⊕ B₁·H³ ⊕ B₂·H² ⊕ B₃·H
/// ```
///
/// is evaluated with the four unreduced 256-bit products XORed together
/// and a *single* reduction — same field value, a quarter of the
/// reduction work. Identical to [`crate::ghash::Ghash::update_padded`]
/// by the distributivity the table path's own tests pin down.
///
/// # Safety
///
/// The CPU must support the `pclmulqdq` feature.
#[cfg(test)]
#[target_feature(enable = "pclmulqdq")]
pub(crate) unsafe fn ghash_padded(powers: &[u128; POWERS], y: u128, data: &[u8]) -> u128 {
    ghash_section(powers, y, data)
}

/// The whole GHASH digest of one GCM message in a single feature-gated
/// call: `aad` section, ciphertext section, and the closing length
/// block. Keeps the accumulator in registers across sections instead of
/// paying a call boundary per section.
///
/// # Safety
///
/// The CPU must support the `pclmulqdq` feature.
#[target_feature(enable = "pclmulqdq")]
pub(crate) unsafe fn ghash_tag(powers: &[u128; POWERS], aad: &[u8], ct: &[u8]) -> u128 {
    let lens = ((aad.len() as u128 * 8) << 64) | (ct.len() as u128 * 8);
    let ma = aad.len().div_ceil(16);
    let mc = ct.len().div_ceil(16);
    let m = ma + mc + 1;
    if m <= POWERS {
        // Whole message in one aggregated reduction: every block’s
        // carry-less products are independent, so the multiplier
        // pipelines across the full digest — the common case for
        // protocol-sized frames.
        let (mut acc_hi, mut acc_lo) = mul_wide(from_u128(lens), from_u128(powers[0]));
        let mut idx = 0;
        for section in [aad, ct] {
            for chunk in section.chunks(16) {
                let mut block = [0u8; 16];
                block[..chunk.len()].copy_from_slice(chunk);
                let (hi, lo) =
                    mul_wide(from_u128(u128::from_be_bytes(block)), from_u128(powers[m - 1 - idx]));
                acc_hi = _mm_xor_si128(acc_hi, hi);
                acc_lo = _mm_xor_si128(acc_lo, lo);
                idx += 1;
            }
        }
        return reduce(acc_hi, acc_lo);
    }
    let mut y = ghash_section(powers, 0, aad);
    y = ghash_section(powers, y, ct);
    let (hi, lo) = mul_wide(from_u128(y ^ lens), from_u128(powers[0]));
    reduce(hi, lo)
}

#[inline]
#[target_feature(enable = "pclmulqdq")]
unsafe fn ghash_section(powers: &[u128; POWERS], mut y: u128, data: &[u8]) -> u128 {
    let mut quads = data.chunks_exact(64);
    for quad in &mut quads {
        let b0 = u128::from_be_bytes(first16(&quad[0..]));
        let b1 = u128::from_be_bytes(first16(&quad[16..]));
        let b2 = u128::from_be_bytes(first16(&quad[32..]));
        let b3 = u128::from_be_bytes(first16(&quad[48..]));
        let (a_hi, a_lo) = mul_wide(from_u128(y ^ b0), from_u128(powers[3]));
        let (b_hi, b_lo) = mul_wide(from_u128(b1), from_u128(powers[2]));
        let (c_hi, c_lo) = mul_wide(from_u128(b2), from_u128(powers[1]));
        let (d_hi, d_lo) = mul_wide(from_u128(b3), from_u128(powers[0]));
        y = reduce(
            _mm_xor_si128(_mm_xor_si128(a_hi, b_hi), _mm_xor_si128(c_hi, d_hi)),
            _mm_xor_si128(_mm_xor_si128(a_lo, b_lo), _mm_xor_si128(c_lo, d_lo)),
        );
    }
    let rem = quads.remainder();
    if !rem.is_empty() {
        // Tail of 1–4 blocks: one aggregated reduction, like the body.
        let m = rem.len().div_ceil(16);
        let zero = from_u128(0);
        let (mut acc_hi, mut acc_lo) = (zero, zero);
        for (idx, chunk) in rem.chunks(16).enumerate() {
            let mut block = [0u8; 16];
            block[..chunk.len()].copy_from_slice(chunk);
            let mut b = u128::from_be_bytes(block);
            if idx == 0 {
                b ^= y;
            }
            let (hi, lo) = mul_wide(from_u128(b), from_u128(powers[m - 1 - idx]));
            acc_hi = _mm_xor_si128(acc_hi, hi);
            acc_lo = _mm_xor_si128(acc_lo, lo);
        }
        y = reduce(acc_hi, acc_lo);
    }
    y
}

#[inline(always)]
fn first16(s: &[u8]) -> [u8; 16] {
    let mut b = [0u8; 16];
    b.copy_from_slice(&s[..16]);
    b
}
