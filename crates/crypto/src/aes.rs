//! AES-256 block cipher (encryption direction only).
//!
//! GCM only ever uses the forward cipher, so decryption of blocks is not
//! implemented. This is a straightforward FIPS-197 implementation intended
//! for the simulation's *protocol realism* (the on-path attacker must only
//! see ciphertext), **not** hardened against timing side channels.

/// The AES S-box (FIPS-197 §5.1.1).
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

const RCON: [u8; 8] = [0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80];

#[inline]
fn xtime(b: u8) -> u8 {
    (b << 1) ^ (((b >> 7) & 1) * 0x1b)
}

fn sub_word(w: u32) -> u32 {
    let b = w.to_be_bytes();
    u32::from_be_bytes([
        SBOX[b[0] as usize],
        SBOX[b[1] as usize],
        SBOX[b[2] as usize],
        SBOX[b[3] as usize],
    ])
}

/// An expanded AES-256 key schedule.
#[derive(Clone)]
pub struct Aes256 {
    round_keys: [u32; 60],
}

impl Aes256 {
    /// Expands a 256-bit key (FIPS-197 §5.2, `Nk = 8`, `Nr = 14`).
    pub fn new(key: &[u8; 32]) -> Self {
        let mut w = [0u32; 60];
        for (i, chunk) in key.chunks_exact(4).enumerate() {
            w[i] = u32::from_be_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        }
        for i in 8..60 {
            let mut t = w[i - 1];
            if i % 8 == 0 {
                t = sub_word(t.rotate_left(8)) ^ ((RCON[i / 8 - 1] as u32) << 24);
            } else if i % 8 == 4 {
                t = sub_word(t);
            }
            w[i] = w[i - 8] ^ t;
        }
        Aes256 { round_keys: w }
    }

    /// Encrypts one 16-byte block in place.
    pub fn encrypt_block(&self, block: &mut [u8; 16]) {
        let mut state = *block;
        add_round_key(&mut state, &self.round_keys[0..4]);
        for round in 1..14 {
            sub_bytes(&mut state);
            shift_rows(&mut state);
            mix_columns(&mut state);
            add_round_key(&mut state, &self.round_keys[4 * round..4 * round + 4]);
        }
        sub_bytes(&mut state);
        shift_rows(&mut state);
        add_round_key(&mut state, &self.round_keys[56..60]);
        *block = state;
    }

    /// Encrypts one 16-byte block, returning the ciphertext.
    pub fn encrypt_block_copy(&self, block: &[u8; 16]) -> [u8; 16] {
        let mut out = *block;
        self.encrypt_block(&mut out);
        out
    }

    /// The expanded schedule as 15 round-key blocks in FIPS-197 byte
    /// order — exactly the bytes `add_round_key` XORs, which is also the
    /// layout AES-NI's `aesenc` consumes. Lets the accelerated backend
    /// share this schedule instead of re-deriving its own.
    pub(crate) fn round_key_blocks(&self) -> [[u8; 16]; 15] {
        let mut rk = [[0u8; 16]; 15];
        for (r, block) in rk.iter_mut().enumerate() {
            for c in 0..4 {
                block[4 * c..4 * c + 4].copy_from_slice(&self.round_keys[4 * r + c].to_be_bytes());
            }
        }
        rk
    }
}

impl std::fmt::Debug for Aes256 {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // Never leak key material through Debug.
        f.write_str("Aes256 { round_keys: <redacted> }")
    }
}

fn add_round_key(state: &mut [u8; 16], rk: &[u32]) {
    for c in 0..4 {
        let k = rk[c].to_be_bytes();
        for r in 0..4 {
            state[4 * c + r] ^= k[r];
        }
    }
}

fn sub_bytes(state: &mut [u8; 16]) {
    for b in state.iter_mut() {
        *b = SBOX[*b as usize];
    }
}

/// State layout: column-major (`state[4*c + r]` is row `r`, column `c`).
fn shift_rows(state: &mut [u8; 16]) {
    let s = *state;
    for r in 1..4 {
        for c in 0..4 {
            state[4 * c + r] = s[4 * ((c + r) % 4) + r];
        }
    }
}

fn mix_columns(state: &mut [u8; 16]) {
    for c in 0..4 {
        let col = [state[4 * c], state[4 * c + 1], state[4 * c + 2], state[4 * c + 3]];
        let t = col[0] ^ col[1] ^ col[2] ^ col[3];
        state[4 * c] = col[0] ^ t ^ xtime(col[0] ^ col[1]);
        state[4 * c + 1] = col[1] ^ t ^ xtime(col[1] ^ col[2]);
        state[4 * c + 2] = col[2] ^ t ^ xtime(col[2] ^ col[3]);
        state[4 * c + 3] = col[3] ^ t ^ xtime(col[3] ^ col[0]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hex::{from_hex, to_hex};

    #[test]
    fn fips197_appendix_c3_vector() {
        // AES-256: key 00..1f, plaintext 00112233..eeff.
        let key: [u8; 32] =
            from_hex("000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
                .try_into()
                .unwrap();
        let mut block: [u8; 16] = from_hex("00112233445566778899aabbccddeeff").try_into().unwrap();
        Aes256::new(&key).encrypt_block(&mut block);
        assert_eq!(to_hex(&block), "8ea2b7ca516745bfeafc49904b496089");
    }

    #[test]
    fn all_zero_key_and_block() {
        // NIST AESAVS KAT (AES-256, zero key, zero plaintext).
        let cipher = Aes256::new(&[0u8; 32]);
        let ct = cipher.encrypt_block_copy(&[0u8; 16]);
        assert_eq!(to_hex(&ct), "dc95c078a2408989ad48a21492842087");
    }

    #[test]
    fn encryption_is_deterministic_and_key_dependent() {
        let c1 = Aes256::new(&[1u8; 32]);
        let c2 = Aes256::new(&[2u8; 32]);
        let pt = [7u8; 16];
        assert_eq!(c1.encrypt_block_copy(&pt), c1.encrypt_block_copy(&pt));
        assert_ne!(c1.encrypt_block_copy(&pt), c2.encrypt_block_copy(&pt));
        assert_ne!(c1.encrypt_block_copy(&pt), pt);
    }

    #[test]
    fn debug_redacts_key_material() {
        let c = Aes256::new(&[9u8; 32]);
        assert_eq!(format!("{c:?}"), "Aes256 { round_keys: <redacted> }");
    }
}
