//! Property-based tests: AEAD round-trip and tamper-rejection invariants.

use proptest::prelude::*;
use tt_crypto::{Aes256Gcm, SealingKey};

proptest! {
    #[test]
    fn seal_open_round_trips(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let aead = Aes256Gcm::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        key in proptest::array::uniform32(any::<u8>()),
        pt in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        let aead = Aes256Gcm::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = aead.seal(&nonce, b"", &pt);
        let bit = flip_bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(aead.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn session_round_trips_many_messages(
        key in proptest::array::uniform32(any::<u8>()),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20),
    ) {
        let mut tx = SealingKey::new(&key, 0);
        let rx = SealingKey::new(&key, 1);
        for m in &msgs {
            let wire = tx.seal(b"hdr", m);
            prop_assert_eq!(&rx.open(b"hdr", &wire).unwrap(), m);
        }
        prop_assert_eq!(tx.next_seq(), msgs.len() as u64);
    }
}
