//! Property-based tests: AEAD round-trip and tamper-rejection
//! invariants, plus the backend differential properties — the
//! accelerated path must be byte-identical to the table path on every
//! key, nonce, AAD, and length, and batch sealing must be byte-identical
//! to sequential sealing on either backend.

use proptest::prelude::*;
use tt_crypto::{gf_mul, Aes256Gcm, CryptoBackend, GhashKey, SealingKey};

/// Splits `plain` into the part ranges a batch call expects.
fn ranges_of(msgs: &[Vec<u8>]) -> (Vec<u8>, Vec<std::ops::Range<usize>>) {
    let mut plain = Vec::new();
    let mut parts = Vec::new();
    for m in msgs {
        let start = plain.len();
        plain.extend_from_slice(m);
        parts.push(start..plain.len());
    }
    (plain, parts)
}

proptest! {
    #[test]
    fn seal_open_round_trips(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..64),
        pt in proptest::collection::vec(any::<u8>(), 0..256),
    ) {
        let aead = Aes256Gcm::new(&key);
        let sealed = aead.seal(&nonce, &aad, &pt);
        prop_assert_eq!(sealed.len(), pt.len() + 16);
        prop_assert_eq!(aead.open(&nonce, &aad, &sealed).unwrap(), pt);
    }

    #[test]
    fn any_single_bit_flip_is_rejected(
        key in proptest::array::uniform32(any::<u8>()),
        pt in proptest::collection::vec(any::<u8>(), 1..64),
        flip_bit in 0usize..64,
    ) {
        let aead = Aes256Gcm::new(&key);
        let nonce = [0u8; 12];
        let mut sealed = aead.seal(&nonce, b"", &pt);
        let bit = flip_bit % (sealed.len() * 8);
        sealed[bit / 8] ^= 1 << (bit % 8);
        prop_assert!(aead.open(&nonce, b"", &sealed).is_err());
    }

    #[test]
    fn session_round_trips_many_messages(
        key in proptest::array::uniform32(any::<u8>()),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..20),
    ) {
        let mut tx = SealingKey::new(&key, 0);
        let rx = SealingKey::new(&key, 1);
        for m in &msgs {
            let wire = tx.seal(b"hdr", m);
            prop_assert_eq!(&rx.open(b"hdr", &wire).unwrap(), m);
        }
        prop_assert_eq!(tx.next_seq(), msgs.len() as u64);
    }

    /// The tentpole's correctness contract: for any key/nonce/AAD/length
    /// the accelerated backend and the table backend emit identical
    /// bytes, and both open each other's output.
    #[test]
    fn backends_are_byte_identical(
        key in proptest::array::uniform32(any::<u8>()),
        nonce in proptest::array::uniform12(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..96),
        pt in proptest::collection::vec(any::<u8>(), 0..300),
    ) {
        let soft = Aes256Gcm::with_backend(&key, CryptoBackend::Soft);
        let fast = Aes256Gcm::with_backend(&key, CryptoBackend::active());
        let a = soft.seal(&nonce, &aad, &pt);
        let b = fast.seal(&nonce, &aad, &pt);
        prop_assert_eq!(&a, &b);
        prop_assert_eq!(fast.open(&nonce, &aad, &a).unwrap(), pt.clone());
        prop_assert_eq!(soft.open(&nonce, &aad, &b).unwrap(), pt);
    }

    /// GHASH three ways: the bitwise GF(2^128) oracle, the 4-bit-table
    /// path, and (when the host has PCLMULQDQ) the carry-less-multiply
    /// path all agree on random operands.
    #[test]
    fn ghash_table_matches_bitwise_oracle(
        h_hi in any::<u64>(),
        h_lo in any::<u64>(),
        x_hi in any::<u64>(),
        x_lo in any::<u64>(),
    ) {
        let h = (h_hi as u128) << 64 | h_lo as u128;
        let x = (x_hi as u128) << 64 | x_lo as u128;
        let key = GhashKey::new(&h.to_be_bytes());
        prop_assert_eq!(key.mul(x), gf_mul(x, h));
        // The clmul lane is covered via whole-tag equality in
        // `backends_are_byte_identical`; its direct multiply
        // differential lives in backend.rs unit tests.
    }

    /// Batch sealing is pure scheduling: the frames must be identical to
    /// sealing each part sequentially, on both backends, and the batch
    /// opener must accept and reproduce every plaintext.
    #[test]
    fn batch_seal_equals_sequential_seal(
        key in proptest::array::uniform32(any::<u8>()),
        aad in proptest::collection::vec(any::<u8>(), 0..32),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..80), 0..12),
        warmup in 0u8..3,
    ) {
        let (plain, parts) = ranges_of(&msgs);
        for backend in [CryptoBackend::Soft, CryptoBackend::active()] {
            let (mut batch_tx, _) = SealingKey::pair_on(&key, backend);
            let (mut seq_tx, mut rx) = SealingKey::pair_on(&key, backend);
            // Desynchronize from zero so batch sequencing is exercised
            // at arbitrary starting counters.
            for _ in 0..warmup {
                batch_tx.seal(&aad, b"warmup");
                seq_tx.seal(&aad, b"warmup");
            }
            let mut out = Vec::new();
            let mut frames = Vec::new();
            batch_tx.seal_batch_into(&aad, &plain, &parts, &mut out, &mut frames);
            prop_assert_eq!(frames.len(), msgs.len());
            prop_assert_eq!(batch_tx.next_seq(), warmup as u64 + msgs.len() as u64);
            let mut sequential = Vec::new();
            for m in &msgs {
                seq_tx.seal_into(&aad, m, &mut sequential);
            }
            prop_assert_eq!(&out, &sequential, "batch bytes != sequential bytes");
            // Every frame opens individually (open is stateless in seq)…
            for (frame, m) in frames.iter().zip(&msgs) {
                prop_assert_eq!(&rx.open(&aad, &out[frame.clone()]).unwrap(), m);
            }
            // …and the batch opener reproduces the whole batch at once.
            let mut opened = Vec::new();
            let mut opened_parts = Vec::new();
            rx.open_batch_into(&aad, &out, &frames, &mut opened, &mut opened_parts).unwrap();
            prop_assert_eq!(opened_parts.len(), msgs.len());
            for (part, m) in opened_parts.iter().zip(&msgs) {
                prop_assert_eq!(&&opened[part.clone()], &m.as_slice());
            }
        }
    }

    /// A flipped bit anywhere in a batched frame fails the whole batch
    /// open, and nothing is written (verify-then-decrypt).
    #[test]
    fn batch_open_is_all_or_nothing(
        key in proptest::array::uniform32(any::<u8>()),
        msgs in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..40), 1..6),
        flip in any::<usize>(),
    ) {
        let (plain, parts) = ranges_of(&msgs);
        let (mut tx, mut rx) = SealingKey::pair(&key);
        let mut out = Vec::new();
        let mut frames = Vec::new();
        tx.seal_batch_into(b"", &plain, &parts, &mut out, &mut frames);
        let bit = flip % (out.len() * 8);
        out[bit / 8] ^= 1 << (bit % 8);
        let mut opened = vec![0xAA];
        let mut opened_parts = Vec::new();
        prop_assert!(rx.open_batch_into(b"", &out, &frames, &mut opened, &mut opened_parts).is_err());
        prop_assert_eq!(&opened, &vec![0xAA]);
        prop_assert!(opened_parts.is_empty());
    }
}
