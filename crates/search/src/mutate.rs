//! Seeded genome generation, mutation and crossover.
//!
//! Every operator draws only from the `StdRng` it is handed — never from
//! ambient entropy — and produces genomes that satisfy
//! [`AdversaryGenome::validate`] by construction (in-range addresses,
//! safe probabilities/rates, times on a 100 ms grid inside the horizon).

use attacks::{DelayAttackMode, PlannedManipulation};
use faults::{FaultAction, FaultEvent, FaultPlan};
use netsim::Addr;
use rand::rngs::StdRng;
use rand::Rng;
use scenario::AttackSpec;
use sim::{SimDuration, SimTime};
use tsc::{TscManipulation, PAPER_TSC_HZ};

use crate::genome::{AdversaryGenome, GenomeSpace};

/// Rebuilds a plan from an explicit event list (the plan type itself is
/// append-only).
pub(crate) fn plan_from(events: Vec<FaultEvent>) -> FaultPlan {
    events.into_iter().fold(FaultPlan::new(), |p, e| p.at(e.at, e.action))
}

/// A grid-aligned instant inside the horizon (100 ms granularity, so
/// shrinking has round numbers to aim for).
fn random_time(space: &GenomeSpace, rng: &mut StdRng) -> SimTime {
    let slots = space.horizon_s * 10;
    SimTime::from_nanos(rng.gen_range(0..=slots) * 100_000_000)
}

/// Any endpoint: the TA (0) or a node (1..=n).
fn random_addr(space: &GenomeSpace, rng: &mut StdRng) -> Addr {
    Addr(rng.gen_range(0..=space.n as u16))
}

/// A node endpoint (1..=n), never the TA.
fn random_node_addr(space: &GenomeSpace, rng: &mut StdRng) -> Addr {
    Addr(rng.gen_range(1..=space.n as u16))
}

/// A 0-based node index.
fn random_node(space: &GenomeSpace, rng: &mut StdRng) -> usize {
    rng.gen_range(0..space.n)
}

/// Two distinct endpoints.
fn random_pair(space: &GenomeSpace, rng: &mut StdRng) -> (Addr, Addr) {
    let a = random_addr(space, rng);
    loop {
        let b = random_addr(space, rng);
        if b != a {
            return (a, b);
        }
    }
}

/// `±10^u` for `u` uniform in `[lo, hi)`: log-uniform magnitudes, so the
/// search explores microsecond lies and half-second lies with equal ease.
fn log_uniform_signed(rng: &mut StdRng, lo: f64, hi: f64) -> f64 {
    let sign = if rng.gen_bool(0.5) { 1.0 } else { -1.0 };
    sign * 10f64.powf(rng.gen_range(lo..hi))
}

fn random_action(space: &GenomeSpace, rng: &mut StdRng) -> FaultAction {
    match rng.gen_range(0..14u32) {
        0 => {
            let (a, b) = random_pair(space, rng);
            FaultAction::PartitionPair { a, b }
        }
        1 => {
            let (src, dst) = random_pair(space, rng);
            FaultAction::PartitionLink { src, dst }
        }
        2 => {
            let (a, b) = random_pair(space, rng);
            FaultAction::HealPair { a, b }
        }
        3 => {
            let (src, dst) = random_pair(space, rng);
            FaultAction::HealLink { src, dst }
        }
        4 => {
            let (src, dst) = random_pair(space, rng);
            FaultAction::SetLinkLoss { src, dst, loss: rng.gen_range(0.05..1.0) }
        }
        5 => {
            let (src, dst) = random_pair(space, rng);
            FaultAction::ClearLinkLoss { src, dst }
        }
        6 => FaultAction::SetDuplication { probability: rng.gen_range(0.0..0.5) },
        7 => FaultAction::SetReordering {
            probability: rng.gen_range(0.0..0.5),
            window: SimDuration::from_millis(rng.gen_range(1..=20)),
        },
        8 => FaultAction::TaOutage,
        9 => FaultAction::TaRestore,
        10 => FaultAction::CrashNode { node: random_node(space, rng) },
        11 => FaultAction::RestartNode { node: random_node(space, rng) },
        12 => FaultAction::AexStorm {
            node: if rng.gen_bool(0.5) { Some(random_node(space, rng)) } else { None },
            count: rng.gen_range(1..=50),
            spacing: SimDuration::from_micros(rng.gen_range(10..=10_000)),
        },
        _ => {
            if rng.gen_bool(0.25) {
                FaultAction::StopLie { node: random_node(space, rng) }
            } else {
                FaultAction::StartLie {
                    node: random_node(space, rng),
                    offset_ns: log_uniform_signed(rng, 4.0, 8.7) as i64,
                    equivocate: rng.gen_bool(0.25),
                }
            }
        }
    }
}

fn random_manipulation(space: &GenomeSpace, rng: &mut StdRng) -> PlannedManipulation {
    let manipulation = match rng.gen_range(0..3u32) {
        0 => TscManipulation::OffsetJump(log_uniform_signed(rng, 3.0, 9.5) as i64),
        1 => TscManipulation::ScaleRate(1.0 + log_uniform_signed(rng, -6.0, -0.7)),
        _ => TscManipulation::SetRateHz(PAPER_TSC_HZ * (1.0 + log_uniform_signed(rng, -6.0, -0.7))),
    };
    PlannedManipulation {
        at: random_time(space, rng),
        victim: random_node_addr(space, rng),
        manipulation,
    }
}

fn random_attack(space: &GenomeSpace, rng: &mut StdRng) -> AttackSpec {
    AttackSpec::CalibrationDelay {
        victim: random_node_addr(space, rng),
        mode: if rng.gen_bool(0.5) { DelayAttackMode::FPlus } else { DelayAttackMode::FMinus },
        added_delay: SimDuration::from_millis(rng.gen_range(1..=400)),
        sleep_threshold: SimDuration::from_millis(rng.gen_range(100..=800)),
    }
}

/// A fresh random genome: a handful of fault events, up to a couple of
/// TSC manipulations, sometimes an on-path attack — never empty.
pub fn random_genome(space: &GenomeSpace, rng: &mut StdRng) -> AdversaryGenome {
    let mut g = AdversaryGenome {
        faults: plan_from(
            (0..rng.gen_range(0..=5u32))
                .map(|_| FaultEvent {
                    at: random_time(space, rng),
                    action: random_action(space, rng),
                })
                .collect(),
        ),
        manipulations: (0..rng.gen_range(0..=2u32))
            .map(|_| random_manipulation(space, rng))
            .collect(),
        attack: rng.gen_bool(0.25).then(|| random_attack(space, rng)),
    };
    if g.is_empty() {
        g.faults = plan_from(vec![FaultEvent {
            at: random_time(space, rng),
            action: random_action(space, rng),
        }]);
    }
    g
}

/// Applies one or two random edits: add/remove/retime/replace a fault
/// event, add/remove/replace a manipulation, or set/clear the attack.
pub fn mutate(genome: &AdversaryGenome, space: &GenomeSpace, rng: &mut StdRng) -> AdversaryGenome {
    let mut g = genome.clone();
    for _ in 0..rng.gen_range(1..=2u32) {
        let mut events = g.faults.events().to_vec();
        match rng.gen_range(0..8u32) {
            0 => {
                events.push(FaultEvent {
                    at: random_time(space, rng),
                    action: random_action(space, rng),
                });
            }
            1 if !events.is_empty() => {
                events.remove(rng.gen_range(0..events.len()));
            }
            2 if !events.is_empty() => {
                let i = rng.gen_range(0..events.len());
                events[i].at = random_time(space, rng);
            }
            3 if !events.is_empty() => {
                let i = rng.gen_range(0..events.len());
                events[i].action = random_action(space, rng);
            }
            4 => {
                g.manipulations.push(random_manipulation(space, rng));
            }
            5 if !g.manipulations.is_empty() => {
                let i = rng.gen_range(0..g.manipulations.len());
                if rng.gen_bool(0.5) {
                    g.manipulations.remove(i);
                } else {
                    g.manipulations[i] = random_manipulation(space, rng);
                }
            }
            6 => {
                g.attack = Some(random_attack(space, rng));
            }
            7 => {
                g.attack = None;
            }
            _ => {
                events.push(FaultEvent {
                    at: random_time(space, rng),
                    action: random_action(space, rng),
                });
            }
        }
        g.faults = plan_from(events);
    }
    if g.is_empty() {
        return random_genome(space, rng);
    }
    g
}

/// One-point crossover per element class: fault events, manipulations and
/// the attack slot each recombine independently.
pub fn crossover(
    a: &AdversaryGenome,
    b: &AdversaryGenome,
    space: &GenomeSpace,
    rng: &mut StdRng,
) -> AdversaryGenome {
    let ea = a.faults.events();
    let eb = b.faults.events();
    let cut_a = rng.gen_range(0..=ea.len());
    let cut_b = rng.gen_range(0..=eb.len());
    let events: Vec<FaultEvent> = ea[..cut_a].iter().chain(&eb[cut_b..]).cloned().collect();
    let cut_ma = rng.gen_range(0..=a.manipulations.len());
    let cut_mb = rng.gen_range(0..=b.manipulations.len());
    let manipulations =
        a.manipulations[..cut_ma].iter().chain(&b.manipulations[cut_mb..]).copied().collect();
    let g = AdversaryGenome {
        faults: plan_from(events),
        manipulations,
        attack: if rng.gen_bool(0.5) { a.attack.clone() } else { b.attack.clone() },
    };
    if g.is_empty() {
        return random_genome(space, rng);
    }
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    const SPACE: GenomeSpace = GenomeSpace { n: 3, horizon_s: 60, service: true };

    #[test]
    fn generated_genomes_validate_and_round_trip() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut g = random_genome(&SPACE, &mut rng);
        for i in 0..200 {
            assert!(!g.is_empty(), "step {i} produced an empty genome");
            g.validate(&SPACE).unwrap_or_else(|e| panic!("step {i}: {e}"));
            assert_eq!(AdversaryGenome::decode(&g.encode()).as_ref(), Ok(&g), "step {i}");
            g = match i % 3 {
                0 => mutate(&g, &SPACE, &mut rng),
                1 => crossover(&g, &random_genome(&SPACE, &mut rng), &SPACE, &mut rng),
                _ => random_genome(&SPACE, &mut rng),
            };
        }
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let once = random_genome(&SPACE, &mut StdRng::seed_from_u64(42));
        let twice = random_genome(&SPACE, &mut StdRng::seed_from_u64(42));
        let other = random_genome(&SPACE, &mut StdRng::seed_from_u64(43));
        assert_eq!(once, twice);
        assert_ne!(once, other);
    }
}
