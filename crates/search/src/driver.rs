//! The generational search loop.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use scenario::{derive_seed, RunPlan, Runner};

use crate::fitness::{evaluate, Fitness, FitnessTarget};
use crate::genome::{AdversaryGenome, GenomeSpace};
use crate::mutate::{crossover, mutate, random_genome};

/// How many elites survive each generation as the parent pool.
const ELITES: usize = 4;

/// One search's parameters.
#[derive(Debug, Clone, Copy)]
pub struct SearchConfig {
    /// The fixed evaluation scenario.
    pub space: GenomeSpace,
    /// The damage metric to maximize.
    pub target: FitnessTarget,
    /// Total evaluation budget (scenario runs).
    pub budget: usize,
    /// Genomes bred per generation.
    pub population: usize,
    /// Root seed; every candidate's generator RNG derives from it.
    pub master_seed: u64,
    /// The single seed every candidate is evaluated at (fitness is a pure
    /// function of the genome, so comparisons are apples-to-apples).
    pub eval_seed: u64,
    /// Worker threads for evaluation (`0` = one per core). Never affects
    /// results, only wall-clock.
    pub jobs: usize,
}

/// What a finished search found.
#[derive(Debug, Clone)]
pub struct SearchOutcome {
    /// The best genome seen, un-shrunk.
    pub best: AdversaryGenome,
    /// Its fitness at the config's eval seed.
    pub fitness: Fitness,
    /// The best genome's candidate index (its full derivation from the
    /// master seed).
    pub candidate: u64,
    /// Scenario runs consumed.
    pub evaluations: usize,
    /// One line per generation, suitable for a search log file.
    pub log: Vec<String>,
}

/// Runs the seeded mutation/crossover search.
///
/// Candidate `i`'s genome is a pure function of
/// `derive_seed(master_seed, i)` and the elite pool at its birth, the
/// elite pool is a pure function of fitnesses and candidate indices, and
/// evaluation goes through [`Runner`]'s plan-order merge — so the outcome
/// (including the log) is byte-identical for any `jobs` value.
///
/// # Panics
///
/// Panics if the budget or population is zero.
pub fn search(cfg: &SearchConfig) -> SearchOutcome {
    assert!(cfg.budget > 0, "search budget must be positive");
    assert!(cfg.population > 0, "population must be positive");
    let runner = Runner::new(cfg.jobs);
    let mut log = Vec::new();
    let mut elites: Vec<(Fitness, u64, AdversaryGenome)> = Vec::new();
    let mut next_candidate: u64 = 0;
    let mut evaluations = 0usize;
    let mut generation = 0usize;

    while evaluations < cfg.budget {
        let batch = cfg.population.min(cfg.budget - evaluations);
        let offspring: Vec<(u64, AdversaryGenome)> = (0..batch)
            .map(|_| {
                let idx = next_candidate;
                next_candidate += 1;
                let mut rng = StdRng::seed_from_u64(derive_seed(cfg.master_seed, idx));
                let genome = if elites.is_empty() || rng.gen_bool(0.125) {
                    random_genome(&cfg.space, &mut rng)
                } else if elites.len() >= 2 && rng.gen_bool(0.25) {
                    let a = rng.gen_range(0..elites.len());
                    let b = (a + rng.gen_range(1..elites.len())) % elites.len();
                    crossover(&elites[a].2, &elites[b].2, &cfg.space, &mut rng)
                } else {
                    let parent = rng.gen_range(0..elites.len());
                    mutate(&elites[parent].2, &cfg.space, &mut rng)
                };
                (idx, genome)
            })
            .collect();

        let plan = RunPlan::with_seeds(offspring.into_iter().map(|c| (c, cfg.eval_seed)));
        let scored = runner.run(&plan, |cell| {
            let (idx, genome) = &cell.param;
            (evaluate(&cfg.space, genome, cfg.target, cell.seed), *idx, genome.clone())
        });
        evaluations += scored.len();

        elites.extend(scored);
        // Better fitness first; candidate index breaks exact ties so the
        // pool never depends on scheduling.
        elites.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        elites.truncate(ELITES);

        let (best_fit, best_idx, best) = &elites[0];
        log.push(format!(
            "gen {generation}: evals={evaluations} best=c{best_idx} detections={} value={:.6} size={}",
            best_fit.detections,
            best_fit.value,
            best.size(),
        ));
        generation += 1;
    }

    let (fitness, candidate, best) = elites.swap_remove(0);
    SearchOutcome { best, fitness, candidate, evaluations, log }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_config(jobs: usize) -> SearchConfig {
        SearchConfig {
            space: GenomeSpace { n: 3, horizon_s: 8, service: false },
            target: FitnessTarget::Drift,
            budget: 12,
            population: 6,
            master_seed: 0xBAD_5EED,
            eval_seed: 0xE7A1,
            jobs,
        }
    }

    #[test]
    fn search_is_deterministic_across_jobs() {
        let a = search(&tiny_config(1));
        let b = search(&tiny_config(4));
        assert_eq!(a.best, b.best);
        assert_eq!(a.fitness, b.fitness);
        assert_eq!(a.candidate, b.candidate);
        assert_eq!(a.log, b.log);
        assert_eq!(a.evaluations, 12);
    }

    #[test]
    fn search_respects_budget_and_finds_something() {
        let out = search(&tiny_config(2));
        assert_eq!(out.evaluations, 12);
        assert!(!out.best.is_empty());
        assert_eq!(out.log.len(), 2);
        // Replaying the winner reproduces its recorded fitness exactly.
        let replayed = evaluate(&tiny_config(0).space, &out.best, FitnessTarget::Drift, 0xE7A1);
        assert_eq!(replayed, out.fitness);
    }
}
