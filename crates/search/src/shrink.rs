//! Greedy minimization of winning genomes.
//!
//! A raw search winner usually carries freeloading elements — fault
//! events that fire after the damage is done, manipulations the fitness
//! never noticed. Shrinking deletes and simplifies until a fixpoint: the
//! result is **1-minimal** (deleting any single remaining element loses
//! fitness) at the evaluation seed, which is what makes committed
//! reproducers readable as attack explanations rather than noise.

use attacks::PlannedManipulation;
use faults::FaultAction;
use scenario::AttackSpec;
use sim::SimTime;
use tsc::TscManipulation;

use crate::fitness::{evaluate, Fitness, FitnessTarget};
use crate::genome::{AdversaryGenome, GenomeSpace};
use crate::mutate::plan_from;

/// What shrinking produced.
#[derive(Debug, Clone)]
pub struct ShrinkOutcome {
    /// The minimized genome.
    pub genome: AdversaryGenome,
    /// Its exact fitness at the evaluation seed.
    pub fitness: Fitness,
    /// Scenario runs the shrink consumed.
    pub evaluations: usize,
}

/// Every genome obtainable by deleting exactly one element.
pub fn delete_one_variants(genome: &AdversaryGenome) -> Vec<AdversaryGenome> {
    let mut variants = Vec::with_capacity(genome.size());
    let events = genome.faults.events();
    for i in 0..events.len() {
        let mut kept = events.to_vec();
        kept.remove(i);
        variants.push(AdversaryGenome { faults: plan_from(kept), ..genome.clone() });
    }
    for i in 0..genome.manipulations.len() {
        let mut kept = genome.manipulations.clone();
        kept.remove(i);
        variants.push(AdversaryGenome { manipulations: kept, ..genome.clone() });
    }
    if genome.attack.is_some() {
        variants.push(AdversaryGenome { attack: None, ..genome.clone() });
    }
    variants
}

/// Halfway from `v` toward `neutral` (a gentler simplification than
/// deletion for magnitudes that matter but are larger than necessary).
fn halve_toward(v: f64, neutral: f64) -> f64 {
    neutral + (v - neutral) / 2.0
}

fn round_down_to_second(at: SimTime) -> SimTime {
    SimTime::from_nanos(at.as_nanos() / 1_000_000_000 * 1_000_000_000)
}

/// Single-edit simplifications: round an element's time down to a whole
/// second, or halve a magnitude toward its neutral value.
fn simplify_variants(genome: &AdversaryGenome) -> Vec<AdversaryGenome> {
    let mut variants = Vec::new();
    let events = genome.faults.events();
    for i in 0..events.len() {
        let rounded = round_down_to_second(events[i].at);
        if rounded != events[i].at {
            let mut edited = events.to_vec();
            edited[i].at = rounded;
            variants.push(AdversaryGenome { faults: plan_from(edited), ..genome.clone() });
        }
        if let FaultAction::StartLie { node, offset_ns, equivocate } = events[i].action {
            if offset_ns.abs() >= 2 {
                let mut edited = events.to_vec();
                edited[i].action =
                    FaultAction::StartLie { node, offset_ns: offset_ns / 2, equivocate };
                variants.push(AdversaryGenome { faults: plan_from(edited), ..genome.clone() });
            }
        }
    }
    for (i, m) in genome.manipulations.iter().enumerate() {
        let mut candidates: Vec<PlannedManipulation> = Vec::new();
        let rounded = round_down_to_second(m.at);
        if rounded != m.at {
            candidates.push(PlannedManipulation { at: rounded, ..*m });
        }
        let halved = match m.manipulation {
            TscManipulation::OffsetJump(t) if t.abs() >= 2 => {
                Some(TscManipulation::OffsetJump(t / 2))
            }
            TscManipulation::ScaleRate(f) if f != 1.0 => {
                Some(TscManipulation::ScaleRate(halve_toward(f, 1.0)))
            }
            TscManipulation::SetRateHz(hz) if hz != tsc::PAPER_TSC_HZ => {
                Some(TscManipulation::SetRateHz(halve_toward(hz, tsc::PAPER_TSC_HZ)))
            }
            _ => None,
        };
        if let Some(manipulation) = halved {
            candidates.push(PlannedManipulation { manipulation, ..*m });
        }
        for c in candidates {
            let mut edited = genome.manipulations.clone();
            edited[i] = c;
            variants.push(AdversaryGenome { manipulations: edited, ..genome.clone() });
        }
    }
    if let Some(AttackSpec::CalibrationDelay { victim, mode, added_delay, sleep_threshold }) =
        genome.attack
    {
        if added_delay.as_nanos() >= 2 {
            variants.push(AdversaryGenome {
                attack: Some(AttackSpec::CalibrationDelay {
                    victim,
                    mode,
                    added_delay: sim::SimDuration::from_nanos(added_delay.as_nanos() / 2),
                    sleep_threshold,
                }),
                ..genome.clone()
            });
        }
    }
    variants
}

/// Minimizes `genome` while preserving `fitness` (per
/// [`Fitness::preserves`]) at `eval_seed`.
///
/// Deletion passes run to fixpoint before simplification is tried, and
/// any simplification win restarts deletion — so the returned genome is
/// 1-minimal: every [`delete_one_variants`] member scores strictly worse.
pub fn shrink(
    space: &GenomeSpace,
    genome: &AdversaryGenome,
    target: FitnessTarget,
    eval_seed: u64,
    fitness: Fitness,
) -> ShrinkOutcome {
    let mut current = genome.clone();
    let mut current_fitness = fitness;
    let mut evaluations = 0;
    loop {
        let mut improved = false;
        for variant in delete_one_variants(&current) {
            let f = evaluate(space, &variant, target, eval_seed);
            evaluations += 1;
            if f.preserves(&current_fitness) {
                current = variant;
                current_fitness = f;
                improved = true;
                break;
            }
        }
        if improved {
            continue;
        }
        for variant in simplify_variants(&current) {
            let f = evaluate(space, &variant, target, eval_seed);
            evaluations += 1;
            if f.preserves(&current_fitness) {
                current = variant;
                current_fitness = f;
                improved = true;
                break;
            }
        }
        if !improved {
            return ShrinkOutcome { genome: current, fitness: current_fitness, evaluations };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultPlan;
    use netsim::Addr;

    #[test]
    fn shrink_drops_freeloading_elements() {
        let space = GenomeSpace { n: 3, horizon_s: 20, service: false };
        // A 2000 ppm rate skew on node 2 (the early calibrator) produces
        // real drift the fitness sees; the late partition and its heal
        // contribute nothing to it.
        let genome = AdversaryGenome {
            faults: FaultPlan::new()
                .at(SimTime::from_secs(19), FaultAction::PartitionPair { a: Addr(1), b: Addr(2) })
                .at(SimTime::from_secs(19), FaultAction::HealPair { a: Addr(1), b: Addr(2) }),
            manipulations: vec![PlannedManipulation {
                at: SimTime::from_nanos(2_500_000_000),
                victim: Addr(3),
                manipulation: TscManipulation::ScaleRate(1.002),
            }],
            attack: None,
        };
        let fitness = evaluate(&space, &genome, FitnessTarget::Drift, 9);
        assert!(fitness.value > 0.5, "skew must register, got {}", fitness.value);
        let out = shrink(&space, &genome, FitnessTarget::Drift, 9, fitness);
        assert!(out.genome.size() < genome.size(), "nothing shrank");
        assert!(out.fitness.preserves(&fitness));
        assert!(out.evaluations > 0);
        // 1-minimality: deleting anything else loses the fitness.
        for variant in delete_one_variants(&out.genome) {
            let f = evaluate(&space, &variant, FitnessTarget::Drift, 9);
            assert!(!f.preserves(&out.fitness), "not 1-minimal: {variant:?}");
        }
        // The surviving manipulation stayed (it is the damage), and its
        // time landed on the whole-second grid.
        assert_eq!(out.genome.manipulations.len(), 1);
        assert_eq!(out.genome.manipulations[0].at.as_nanos() % 1_000_000_000, 0);
    }
}
