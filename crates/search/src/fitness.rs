//! Lexicographic adversary fitness extracted from run traces.

use std::cmp::Ordering;

use runtime::World;
use trace::DETECTION_GRACE;

use crate::genome::{AdversaryGenome, GenomeSpace};

/// Which damage metric breaks ties among equally-stealthy plans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitnessTarget {
    /// Maximize the worst clock drift (ms) no detection event covers
    /// within [`trace::DETECTION_GRACE`].
    Drift,
    /// Maximize serving-layer SLO damage: shed, unavailable, timed-out
    /// and all-down requests across the run.
    Slo,
}

impl FitnessTarget {
    /// The stable token used in reproducer files and CSV columns.
    pub fn encode(&self) -> &'static str {
        match self {
            FitnessTarget::Drift => "drift",
            FitnessTarget::Slo => "slo",
        }
    }

    /// Decodes an [`FitnessTarget::encode`]d token.
    ///
    /// # Errors
    ///
    /// Returns a description of the unknown token.
    pub fn decode(s: &str) -> Result<FitnessTarget, String> {
        match s.trim() {
            "drift" => Ok(FitnessTarget::Drift),
            "slo" => Ok(FitnessTarget::Slo),
            other => Err(format!("unknown fitness target {other:?}")),
        }
    }
}

/// An adversary plan's score: stealth first, damage second.
///
/// Detections are the hard axis — a plan the defender flags even once
/// loses to any plan it never flags, however much damage the flagged one
/// does. That ordering is what pushes the search toward *undetected*
/// failures, the only kind the paper's analysis worries about.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Fitness {
    /// Total detection events across all nodes (monitor trips,
    /// corrections, chimer rejections, gossip alerts, quorum suspicions
    /// and quarantines).
    pub detections: u64,
    /// The damage metric selected by the [`FitnessTarget`].
    pub value: f64,
}

impl Fitness {
    /// Lexicographic comparison; `Greater` means `self` is the *better*
    /// adversary (fewer detections, then more damage).
    // Not `Ord`: the f64 damage axis has no `Eq`, and `total_cmp` is a
    // deliberate choice callers should see at the definition.
    #[allow(clippy::should_implement_trait)]
    pub fn cmp(&self, other: &Fitness) -> Ordering {
        other.detections.cmp(&self.detections).then(self.value.total_cmp(&other.value))
    }

    /// Whether `self` is at least as good as `base` for shrinking: no
    /// more detections, and damage within `1e-9` of the base.
    pub fn preserves(&self, base: &Fitness) -> bool {
        self.detections <= base.detections && self.value >= base.value - 1e-9
    }

    /// Encodes as `detections=<n> value=<f64>` (exact round trip).
    pub fn encode(&self) -> String {
        format!("detections={} value={}", self.detections, self.value)
    }

    /// Decodes an [`Fitness::encode`]d score.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn decode(s: &str) -> Result<Fitness, String> {
        let (mut detections, mut value) = (None, None);
        for kv in s.trim().split(' ').filter(|t| !t.is_empty()) {
            let (k, v) = kv.split_once('=').ok_or_else(|| format!("expected k=v, got {kv:?}"))?;
            match k {
                "detections" => {
                    detections =
                        Some(v.parse().map_err(|_| format!("unparseable detections {v:?}"))?);
                }
                "value" => {
                    value = Some(v.parse::<f64>().map_err(|_| format!("unparseable value {v:?}"))?);
                }
                _ => return Err(format!("unknown field {k:?}")),
            }
        }
        let f = Fitness {
            detections: detections.ok_or("missing detections")?,
            value: value.ok_or("missing value")?,
        };
        if !f.value.is_finite() {
            return Err(format!("non-finite fitness value {}", f.value));
        }
        Ok(f)
    }
}

/// Scores a finished run under `target`.
pub fn score(world: &World, target: FitnessTarget) -> Fitness {
    let detections =
        (0..world.node_count()).map(|i| world.recorder.node(i).detection_count()).sum();
    let value = match target {
        FitnessTarget::Drift => (0..world.node_count())
            .map(|i| world.recorder.node(i).max_undetected_drift_ms(DETECTION_GRACE))
            .fold(0.0f64, f64::max),
        FitnessTarget::Slo => world.recorder.service.badput() as f64,
    };
    Fitness { detections, value }
}

/// Runs `genome` in `space` at `seed` and scores the trace.
pub fn evaluate(
    space: &GenomeSpace,
    genome: &AdversaryGenome,
    target: FitnessTarget,
    seed: u64,
) -> Fitness {
    score(&space.spec(genome).run(seed), target)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let stealthy = Fitness { detections: 0, value: 1.0 };
        let loud = Fitness { detections: 3, value: 1e9 };
        let stealthier_damage = Fitness { detections: 0, value: 2.0 };
        assert_eq!(stealthy.cmp(&loud), Ordering::Greater);
        assert_eq!(stealthy.cmp(&stealthier_damage), Ordering::Less);
        assert_eq!(stealthy.cmp(&stealthy.clone()), Ordering::Equal);
    }

    #[test]
    fn preserves_tolerates_tiny_value_noise() {
        let base = Fitness { detections: 1, value: 10.0 };
        assert!(Fitness { detections: 0, value: 10.0 }.preserves(&base));
        assert!(Fitness { detections: 1, value: 10.0 - 1e-10 }.preserves(&base));
        assert!(!Fitness { detections: 2, value: 10.0 }.preserves(&base));
        assert!(!Fitness { detections: 1, value: 9.0 }.preserves(&base));
    }

    #[test]
    fn fitness_codec_round_trips() {
        for f in [
            Fitness { detections: 0, value: 13.179_999 },
            Fitness { detections: 7, value: 0.1 + 0.2 },
        ] {
            assert_eq!(Fitness::decode(&f.encode()), Ok(f));
        }
        assert!(Fitness::decode("detections=1 value=inf").is_err());
        assert!(Fitness::decode("value=1").is_err());
    }

    #[test]
    fn target_codec_round_trips() {
        for t in [FitnessTarget::Drift, FitnessTarget::Slo] {
            assert_eq!(FitnessTarget::decode(t.encode()), Ok(t));
        }
        assert!(FitnessTarget::decode("latency").is_err());
    }

    #[test]
    fn empty_genome_scores_clean() {
        let space = GenomeSpace { n: 3, horizon_s: 5, service: false };
        let f = evaluate(&space, &AdversaryGenome::default(), FitnessTarget::Drift, 7);
        // An honest 5 s run: maybe startup corrections, but no damage the
        // search could mistake for progress.
        assert!(f.value < 5.0, "honest drift {}", f.value);
    }
}
