//! # search — adversarial scenario search over the Triad simulator
//!
//! The hand-written chaos suites (E20/E22) exercise fault classes a human
//! thought of. This crate searches for the ones nobody did: a seeded
//! mutation/crossover loop over [`AdversaryGenome`]s — compositions of a
//! [`faults::FaultPlan`], planned TSC manipulations and an on-path attack
//! — each evaluated by running the scenario it encodes and scoring the
//! resulting trace. Fitness is lexicographic ([`Fitness`]): a plan that
//! triggers fewer detections always beats one that triggers more, and ties
//! break on the damage metric the [`FitnessTarget`] selects (undetected
//! clock drift, or serving-layer SLO damage).
//!
//! The search is deterministic end to end: every candidate's generator RNG
//! is seeded from `derive_seed(master_seed, candidate_index)`, evaluations
//! go through [`scenario::Runner`] (plan-order merge), and selection
//! tie-breaks on candidate index — so the same master seed yields
//! byte-identical corpora and logs at any `--jobs` setting.
//!
//! Winners are [`shrink`]-minimized (delete-one fixpoint: removing any
//! single remaining genome element strictly worsens fitness) and emitted
//! as text [`Reproducer`] files that `cargo test` replays forever after.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod corpus;
mod driver;
mod fitness;
mod genome;
mod mutate;
mod shrink;

pub use corpus::Reproducer;
pub use driver::{search, SearchConfig, SearchOutcome};
pub use fitness::{evaluate, score, Fitness, FitnessTarget};
pub use genome::{AdversaryGenome, GenomeSpace};
pub use mutate::{crossover, mutate, random_genome};
pub use shrink::{delete_one_variants, shrink, ShrinkOutcome};
