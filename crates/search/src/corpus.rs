//! Reproducer files: the search's durable output.
//!
//! A winning, shrunk genome is committed as a small text file carrying
//! everything needed to re-run it — the evaluation space, fitness target,
//! evaluation seed, the fitness it achieved and the genome itself. The
//! regression corpus under `results/search/corpus/` is replayed by
//! `cargo test` forever after, so a defender improvement that breaks an
//! old attack shows up as a (welcome) test failure, and a regression that
//! resurrects one shows up as a fitness mismatch.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::fitness::{evaluate, Fitness, FitnessTarget};
use crate::genome::{AdversaryGenome, GenomeSpace};

const HEADER: &str = "triad-search reproducer v1";

/// One committed search winner.
#[derive(Debug, Clone, PartialEq)]
pub struct Reproducer {
    /// Corpus-unique name (also the file stem).
    pub name: String,
    /// The evaluation scenario the fitness was measured in.
    pub space: GenomeSpace,
    /// The damage metric the search maximized.
    pub target: FitnessTarget,
    /// The seed the genome was evaluated (and is replayed) at.
    pub eval_seed: u64,
    /// The fitness recorded when the reproducer was minted.
    pub fitness: Fitness,
    /// The minimized adversary plan.
    pub genome: AdversaryGenome,
}

impl Reproducer {
    /// Re-runs the genome and returns its fitness now (compare against
    /// [`Reproducer::fitness`] to detect defender or simulator drift).
    pub fn replay(&self) -> Fitness {
        evaluate(&self.space, &self.genome, self.target, self.eval_seed)
    }

    /// Encodes the whole reproducer as its file format.
    pub fn encode(&self) -> String {
        let mut out = String::new();
        out.push_str(HEADER);
        out.push('\n');
        out.push_str(&format!("name {}\n", self.name));
        out.push_str(&format!("space {}\n", self.space.encode()));
        out.push_str(&format!("target {}\n", self.target.encode()));
        out.push_str(&format!("eval-seed {}\n", self.eval_seed));
        out.push_str(&format!("fitness {}\n", self.fitness.encode()));
        out.push_str("genome\n");
        let genome = self.genome.encode();
        if !genome.is_empty() {
            out.push_str(&genome);
            out.push('\n');
        }
        out.push_str("end\n");
        out
    }

    /// Decodes a reproducer file; the genome is validated against its
    /// space, so a corrupt file never reaches the simulator.
    ///
    /// # Errors
    ///
    /// Returns the offending line and what was wrong with it.
    pub fn decode(s: &str) -> Result<Reproducer, String> {
        let mut lines = s.lines();
        if lines.next().map(str::trim) != Some(HEADER) {
            return Err(format!("missing header {HEADER:?}"));
        }
        let (mut name, mut space, mut target, mut eval_seed, mut fitness) =
            (None, None, None, None, None);
        let mut genome_lines: Option<Vec<&str>> = None;
        let mut ended = false;
        for line in lines {
            let trimmed = line.trim();
            if trimmed.is_empty() {
                continue;
            }
            if let Some(body) = &mut genome_lines {
                if trimmed == "end" {
                    ended = true;
                    break;
                }
                body.push(trimmed);
                continue;
            }
            if trimmed == "genome" {
                genome_lines = Some(Vec::new());
                continue;
            }
            let (key, rest) = trimmed
                .split_once(' ')
                .ok_or_else(|| format!("expected '<key> <value>', got {trimmed:?}"))?;
            match key {
                "name" => name = Some(rest.trim().to_string()),
                "space" => space = Some(GenomeSpace::decode(rest)?),
                "target" => target = Some(FitnessTarget::decode(rest)?),
                "eval-seed" => {
                    eval_seed = Some(
                        rest.trim().parse().map_err(|_| format!("unparseable seed {rest:?}"))?,
                    );
                }
                "fitness" => fitness = Some(Fitness::decode(rest)?),
                other => return Err(format!("unknown key {other:?}")),
            }
        }
        if !ended {
            return Err("missing end marker".to_string());
        }
        let space = space.ok_or("missing space")?;
        let genome = AdversaryGenome::decode(&genome_lines.unwrap_or_default().join("\n"))?;
        genome.validate(&space)?;
        let r = Reproducer {
            name: name.ok_or("missing name")?,
            space,
            target: target.ok_or("missing target")?,
            eval_seed: eval_seed.ok_or("missing eval-seed")?,
            fitness: fitness.ok_or("missing fitness")?,
            genome,
        };
        if r.name.is_empty() || !r.name.chars().all(|c| c.is_ascii_alphanumeric() || c == '-') {
            return Err(format!("invalid reproducer name {:?}", r.name));
        }
        Ok(r)
    }

    /// Writes `<dir>/<name>.scn`, creating `dir` as needed.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors.
    pub fn save(&self, dir: &Path) -> io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.scn", self.name));
        fs::write(&path, self.encode())?;
        Ok(path)
    }

    /// Loads one reproducer file.
    ///
    /// # Errors
    ///
    /// Propagates filesystem errors; format errors become
    /// [`io::ErrorKind::InvalidData`].
    pub fn load(path: &Path) -> io::Result<Reproducer> {
        let text = fs::read_to_string(path)?;
        Reproducer::decode(&text).map_err(|e| {
            io::Error::new(io::ErrorKind::InvalidData, format!("{}: {e}", path.display()))
        })
    }

    /// Loads every `.scn` file under `dir`, sorted by file name (an
    /// absent directory is an empty corpus, not an error).
    ///
    /// # Errors
    ///
    /// Propagates filesystem and format errors.
    pub fn load_dir(dir: &Path) -> io::Result<Vec<Reproducer>> {
        let mut paths: Vec<PathBuf> = match fs::read_dir(dir) {
            Ok(entries) => entries
                .collect::<io::Result<Vec<_>>>()?
                .into_iter()
                .map(|e| e.path())
                .filter(|p| p.extension().is_some_and(|e| e == "scn"))
                .collect(),
            Err(e) if e.kind() == io::ErrorKind::NotFound => return Ok(Vec::new()),
            Err(e) => return Err(e),
        };
        paths.sort();
        paths.iter().map(|p| Reproducer::load(p)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::{FaultAction, FaultPlan};
    use sim::SimTime;

    fn sample() -> Reproducer {
        Reproducer {
            name: "drift-n3-b64".to_string(),
            space: GenomeSpace { n: 3, horizon_s: 36, service: true },
            target: FitnessTarget::Drift,
            eval_seed: 0xE23,
            fitness: Fitness { detections: 0, value: 12.5 },
            genome: AdversaryGenome {
                faults: FaultPlan::new().at(SimTime::from_secs(4), FaultAction::TaOutage),
                ..Default::default()
            },
        }
    }

    #[test]
    fn reproducer_codec_round_trips() {
        let r = sample();
        assert_eq!(Reproducer::decode(&r.encode()), Ok(r.clone()));
        let empty = Reproducer { genome: AdversaryGenome::default(), ..r };
        assert_eq!(Reproducer::decode(&empty.encode()), Ok(empty));
    }

    #[test]
    fn reproducer_decode_rejects_corruption() {
        let r = sample();
        assert!(Reproducer::decode(&r.encode().replace("triad-search", "other")).is_err());
        assert!(Reproducer::decode(&r.encode().replace("\nend\n", "\n")).is_err());
        assert!(Reproducer::decode(&r.encode().replace("drift-n3-b64", "bad name!")).is_err());
        // Genome outside its space: victim 9 in a 3-node cluster.
        let oob = r.encode().replace("fault 4000000000 ta-outage", "manip 1 9 offset-jump 5");
        assert!(Reproducer::decode(&oob).is_err());
    }

    #[test]
    fn save_load_dir_round_trips_sorted() {
        let dir = std::env::temp_dir().join(format!("tt-corpus-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let a = Reproducer { name: "bbb".into(), ..sample() };
        let b = Reproducer { name: "aaa".into(), ..sample() };
        a.save(&dir).unwrap();
        b.save(&dir).unwrap();
        fs::write(dir.join("notes.txt"), "ignored").unwrap();
        let loaded = Reproducer::load_dir(&dir).unwrap();
        assert_eq!(loaded, vec![b, a]);
        assert!(Reproducer::load_dir(&dir.join("missing")).unwrap().is_empty());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn replay_matches_recorded_fitness() {
        let mut r = sample();
        r.fitness = r.replay();
        let decoded = Reproducer::decode(&r.encode()).unwrap();
        assert_eq!(decoded.replay(), r.fitness);
    }
}
