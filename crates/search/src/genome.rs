//! The searchable adversary description and the scenario it runs in.

use attacks::PlannedManipulation;
use faults::{FaultEvent, FaultPlan};
use scenario::{AexSpec, AttackSpec, FaultSpec, NodeImplSpec, ScenarioSpec};
use service::{QuorumLoopSpec, QuorumSpec, ServiceSpec};
use sim::{SimDuration, SimTime};

/// The fixed part of an evaluation: cluster shape, horizon and workload.
///
/// Everything the adversary may *not* vary lives here, so two genomes
/// compared under the same space differ only in adversarial behaviour.
/// The defender is always the §V hardened node — the strongest one the
/// repo has — so a winning genome beats the best defence, not a strawman.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenomeSpace {
    /// Cluster size (nodes, excluding the TA).
    pub n: usize,
    /// Run horizon in whole seconds.
    pub horizon_s: u64,
    /// Whether the serving layer (open loop + quorum loop) runs; required
    /// for SLO-damage fitness, optional ballast for drift fitness.
    pub service: bool,
}

impl GenomeSpace {
    /// The run horizon as a simulation instant.
    pub fn horizon(&self) -> SimTime {
        SimTime::from_secs(self.horizon_s)
    }

    /// The scenario a genome is evaluated in: `n` §V hardened nodes under
    /// the paper's AEX regime, probing clients on node 0, and (when
    /// enabled) a serving layer with an `f = (n-1)/2` quorum read loop.
    pub fn spec(&self, genome: &AdversaryGenome) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(self.n)
            .horizon(self.horizon())
            .all_nodes_aex(AexSpec::TriadLike)
            .node_impl(NodeImplSpec::Resilient(Box::default()))
            .client(0, SimDuration::from_millis(20))
            .reading_client(0, SimDuration::from_millis(20));
        if self.service {
            let svc = ServiceSpec::default().quorum_loop(QuorumLoopSpec {
                quorum: QuorumSpec { f: (self.n - 1) / 2, ..Default::default() },
                ..Default::default()
            });
            spec = spec.service(svc);
        }
        if !genome.faults.is_empty() {
            spec = spec.faults(FaultSpec::Fixed(genome.faults.clone()));
        }
        for &m in &genome.manipulations {
            spec = spec.manipulation(m);
        }
        if let Some(attack) = &genome.attack {
            spec = spec.attack(attack.clone());
        }
        spec
    }

    /// Encodes as `n=<n> horizon-s=<s> service=<bool>`.
    pub fn encode(&self) -> String {
        format!("n={} horizon-s={} service={}", self.n, self.horizon_s, self.service)
    }

    /// Decodes an [`GenomeSpace::encode`]d space.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token.
    pub fn decode(s: &str) -> Result<GenomeSpace, String> {
        let (mut n, mut horizon_s, mut service) = (None, None, None);
        for kv in s.trim().split(' ').filter(|t| !t.is_empty()) {
            let (k, v) = kv.split_once('=').ok_or_else(|| format!("expected k=v, got {kv:?}"))?;
            match k {
                "n" => n = Some(v.parse().map_err(|_| format!("unparseable n {v:?}"))?),
                "horizon-s" => {
                    horizon_s = Some(v.parse().map_err(|_| format!("unparseable horizon {v:?}"))?);
                }
                "service" => {
                    service = Some(v.parse().map_err(|_| format!("unparseable service {v:?}"))?);
                }
                _ => return Err(format!("unknown field {k:?}")),
            }
        }
        let space = GenomeSpace {
            n: n.ok_or("missing n")?,
            horizon_s: horizon_s.ok_or("missing horizon-s")?,
            service: service.ok_or("missing service")?,
        };
        if space.n == 0 {
            return Err("n must be at least 1".to_string());
        }
        if space.horizon_s == 0 {
            return Err("horizon-s must be at least 1".to_string());
        }
        Ok(space)
    }
}

/// One candidate adversary: everything a malicious platform plus on-path
/// attacker does over a run, as data.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AdversaryGenome {
    /// Scripted infrastructure faults (partitions, outages, crashes, AEX
    /// storms, serving-path lies).
    pub faults: FaultPlan,
    /// Hypervisor-level TSC manipulations.
    pub manipulations: Vec<PlannedManipulation>,
    /// At most one on-path protocol attack.
    pub attack: Option<AttackSpec>,
}

impl AdversaryGenome {
    /// Number of atomic elements (fault events + manipulations + attack):
    /// the quantity shrinking minimizes.
    pub fn size(&self) -> usize {
        self.faults.len() + self.manipulations.len() + usize::from(self.attack.is_some())
    }

    /// Whether the genome does nothing at all.
    pub fn is_empty(&self) -> bool {
        self.size() == 0
    }

    /// Encodes as one `fault`/`manip`/`attack`-prefixed line per element,
    /// order-preserving; round-tripped exactly by
    /// [`AdversaryGenome::decode`].
    pub fn encode(&self) -> String {
        let mut lines = Vec::with_capacity(self.size());
        if let Some(attack) = &self.attack {
            lines.push(format!("attack {}", attack.encode()));
        }
        for m in &self.manipulations {
            lines.push(format!("manip {}", m.encode()));
        }
        for e in self.faults.events() {
            lines.push(format!("fault {}", e.encode()));
        }
        lines.join("\n")
    }

    /// Decodes an [`AdversaryGenome::encode`]d genome (blank lines are
    /// ignored).
    ///
    /// # Errors
    ///
    /// Returns the offending line and what was wrong with it.
    pub fn decode(s: &str) -> Result<AdversaryGenome, String> {
        let mut genome = AdversaryGenome::default();
        for (i, line) in s.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let err = |e: String| format!("line {}: {e}", i + 1);
            let (kind, rest) = line
                .split_once(' ')
                .ok_or_else(|| err(format!("expected '<kind> ...', got {line:?}")))?;
            match kind {
                "attack" => {
                    if genome.attack.is_some() {
                        return Err(err("duplicate attack line".to_string()));
                    }
                    genome.attack = Some(AttackSpec::decode(rest).map_err(err)?);
                }
                "manip" => {
                    genome.manipulations.push(PlannedManipulation::decode(rest).map_err(err)?);
                }
                "fault" => {
                    let e = FaultEvent::decode(rest).map_err(err)?;
                    genome.faults = std::mem::take(&mut genome.faults).at(e.at, e.action);
                }
                other => return Err(err(format!("unknown element kind {other:?}"))),
            }
        }
        Ok(genome)
    }

    /// Bounds-checks every element against `space` (addresses in range,
    /// probabilities and rates safe, times within the horizon).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self, space: &GenomeSpace) -> Result<(), String> {
        self.faults.validate(space.n)?;
        for e in self.faults.events() {
            if e.at > space.horizon() {
                return Err(format!("fault at {} ns beyond the horizon", e.at.as_nanos()));
            }
        }
        for m in &self.manipulations {
            m.validate(space.n)?;
            if m.at > space.horizon() {
                return Err(format!("manipulation at {} ns beyond the horizon", m.at.as_nanos()));
            }
        }
        if let Some(attack) = &self.attack {
            attack.validate(space.n)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faults::FaultAction;
    use netsim::Addr;
    use tsc::TscManipulation;

    fn sample() -> AdversaryGenome {
        AdversaryGenome {
            faults: FaultPlan::new()
                .at(SimTime::from_secs(40), FaultAction::TaOutage)
                .at(SimTime::from_secs(50), FaultAction::TaRestore)
                .at(
                    SimTime::from_secs(20),
                    FaultAction::StartLie { node: 1, offset_ns: -250_000_000, equivocate: true },
                ),
            manipulations: vec![PlannedManipulation {
                at: SimTime::from_secs(30),
                victim: Addr(2),
                manipulation: TscManipulation::ScaleRate(1.000_05),
            }],
            attack: Some(AttackSpec::calibration_delay_paper(
                Addr(1),
                attacks::DelayAttackMode::FMinus,
            )),
        }
    }

    #[test]
    fn genome_codec_round_trips_in_order() {
        let g = sample();
        assert_eq!(g.size(), 5);
        let decoded = AdversaryGenome::decode(&g.encode()).unwrap();
        assert_eq!(decoded, g);
        assert_eq!(decoded.encode(), g.encode());
        assert_eq!(AdversaryGenome::decode("").unwrap(), AdversaryGenome::default());
    }

    #[test]
    fn genome_decode_rejects_garbage() {
        assert!(AdversaryGenome::decode("fault 5 warp-field a=1").is_err());
        assert!(AdversaryGenome::decode("blob 5").is_err());
        let duplicated = format!(
            "{}\n{}",
            sample().encode(),
            "attack calibration-delay victim=1 mode=f+ delay=1 threshold=2"
        );
        assert!(AdversaryGenome::decode(&duplicated).is_err());
    }

    #[test]
    fn genome_validation_bounds() {
        let space = GenomeSpace { n: 3, horizon_s: 90, service: true };
        assert!(sample().validate(&space).is_ok());
        let late = AdversaryGenome {
            faults: FaultPlan::new().at(SimTime::from_secs(91), FaultAction::TaOutage),
            ..Default::default()
        };
        assert!(late.validate(&space).is_err());
        let oob = AdversaryGenome {
            manipulations: vec![PlannedManipulation {
                at: SimTime::from_secs(1),
                victim: Addr(4),
                manipulation: TscManipulation::OffsetJump(5),
            }],
            ..Default::default()
        };
        assert!(oob.validate(&space).is_err());
    }

    #[test]
    fn space_codec_round_trips() {
        for space in [
            GenomeSpace { n: 3, horizon_s: 90, service: true },
            GenomeSpace { n: 5, horizon_s: 36, service: false },
        ] {
            assert_eq!(GenomeSpace::decode(&space.encode()), Ok(space));
        }
        assert!(GenomeSpace::decode("n=0 horizon-s=90 service=true").is_err());
        assert!(GenomeSpace::decode("n=3 horizon-s=90").is_err());
    }

    #[test]
    fn round_tripped_genome_evaluates_identically() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let space = GenomeSpace { n: 3, horizon_s: 10, service: false };
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..3 {
            let g = crate::random_genome(&space, &mut rng);
            let decoded = AdversaryGenome::decode(&g.encode()).unwrap();
            assert_eq!(
                crate::evaluate(&space, &g, crate::FitnessTarget::Drift, 1),
                crate::evaluate(&space, &decoded, crate::FitnessTarget::Drift, 1),
            );
        }
    }

    #[test]
    fn spec_builds_and_runs() {
        let space = GenomeSpace { n: 3, horizon_s: 5, service: true };
        let g = AdversaryGenome {
            faults: FaultPlan::new().at(SimTime::from_secs(2), FaultAction::TaOutage),
            ..Default::default()
        };
        let world = space.spec(&g).run(7);
        assert_eq!(world.node_count(), 3);
        assert!(!world.ta_online);
    }
}
