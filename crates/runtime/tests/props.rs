//! Property-based tests for the runtime's key management and clock
//! blackboard.

use netsim::Addr;
use proptest::prelude::*;
use runtime::{ClockState, KeyTable};

proptest! {
    /// Every provisioned pair round-trips arbitrary payloads in both
    /// directions, and unprovisioned pairs always fail.
    #[test]
    fn key_table_round_trips_and_isolates(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        a in 1u16..50,
        b in 51u16..100,
        c in 101u16..150,
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(a), Addr(b), key);
        let wire = table.seal(Addr(a), Addr(b), &payload);
        prop_assert_eq!(table.open(Addr(b), Addr(a), &wire).unwrap(), payload.clone());
        // Uninvolved endpoint cannot open it.
        prop_assert!(table.open(Addr(c), Addr(a), &wire).is_err());
        // Nor can the sender (reflection).
        prop_assert!(table.open(Addr(a), Addr(b), &wire).is_err());
    }

    /// Sealing is never deterministic across messages (nonce sequencing),
    /// but always decryptable in order or out of order.
    #[test]
    fn sealing_is_nonce_sequenced(
        key in proptest::array::uniform32(any::<u8>()),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 2..10),
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(2), key);
        let wires: Vec<Vec<u8>> =
            payloads.iter().map(|p| table.seal(Addr(1), Addr(2), p)).collect();
        // All ciphertexts distinct even for identical payloads.
        for i in 0..wires.len() {
            for j in (i + 1)..wires.len() {
                prop_assert_ne!(&wires[i], &wires[j]);
            }
        }
        // Out-of-order opening works (UDP reordering).
        for (i, wire) in wires.iter().enumerate().rev() {
            prop_assert_eq!(table.open(Addr(2), Addr(1), wire).unwrap(), payloads[i].clone());
        }
    }

    /// The published clock state evaluates linearly in ticks and respects
    /// validity. Tick values stay within f64's exact-integer range (2^53),
    /// which covers > 1 month of simulated time at 3 GHz — far beyond any
    /// scenario horizon.
    #[test]
    fn clock_state_is_linear_in_ticks(
        anchor_ticks in 0u64..(1u64 << 50),
        f_mhz in 100.0..5_000.0f64,
        dticks in 0u64..10_000_000_000,
        anchor_ns in 0.0..1e15f64,
    ) {
        let c = ClockState {
            valid: true,
            anchor_ref_ns: anchor_ns,
            anchor_ticks,
            f_calib_hz: f_mhz * 1e6,
            uncertainty_ns: 0.0,
        };
        let at_anchor = c.now_ns(anchor_ticks).unwrap();
        prop_assert!((at_anchor - anchor_ns).abs() < 1.0);
        let later = c.now_ns(anchor_ticks + dticks).unwrap();
        let expected = anchor_ns + dticks as f64 / (f_mhz * 1e6) * 1e9;
        prop_assert!((later - expected).abs() < 1.0 + expected.abs() * 1e-12);
        // Invalid state never produces a reading.
        let invalid = ClockState { valid: false, ..c };
        prop_assert!(invalid.now_ns(anchor_ticks).is_none());
    }
}
