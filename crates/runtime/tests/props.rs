//! Property-based tests for the runtime's key management and clock
//! blackboard.

use netsim::Addr;
use proptest::prelude::*;
use runtime::{ClockState, KeyTable};

proptest! {
    /// Every provisioned pair round-trips arbitrary payloads in both
    /// directions, and unprovisioned pairs always fail.
    #[test]
    fn key_table_round_trips_and_isolates(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        a in 1u16..50,
        b in 51u16..100,
        c in 101u16..150,
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(a), Addr(b), key);
        let wire = table.seal(Addr(a), Addr(b), &payload);
        prop_assert_eq!(table.open(Addr(b), Addr(a), &wire).unwrap(), payload.clone());
        // Uninvolved endpoint cannot open it.
        prop_assert!(table.open(Addr(c), Addr(a), &wire).is_err());
        // Nor can the sender (reflection).
        prop_assert!(table.open(Addr(a), Addr(b), &wire).is_err());
    }

    /// Sealing is never deterministic across messages (nonce sequencing),
    /// but always decryptable in order or out of order.
    #[test]
    fn sealing_is_nonce_sequenced(
        key in proptest::array::uniform32(any::<u8>()),
        payloads in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 1..32), 2..10),
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(2), key);
        let wires: Vec<Vec<u8>> =
            payloads.iter().map(|p| table.seal(Addr(1), Addr(2), p)).collect();
        // All ciphertexts distinct even for identical payloads.
        for i in 0..wires.len() {
            for j in (i + 1)..wires.len() {
                prop_assert_ne!(&wires[i], &wires[j]);
            }
        }
        // Out-of-order opening works (UDP reordering).
        for (i, wire) in wires.iter().enumerate().rev() {
            prop_assert_eq!(table.open(Addr(2), Addr(1), wire).unwrap(), payloads[i].clone());
        }
    }

    /// The published clock state evaluates linearly in ticks and respects
    /// validity. Tick values stay within f64's exact-integer range (2^53),
    /// which covers > 1 month of simulated time at 3 GHz — far beyond any
    /// scenario horizon.
    #[test]
    fn clock_state_is_linear_in_ticks(
        anchor_ticks in 0u64..(1u64 << 50),
        f_mhz in 100.0..5_000.0f64,
        dticks in 0u64..10_000_000_000,
        anchor_ns in 0.0..1e15f64,
    ) {
        let c = ClockState {
            valid: true,
            anchor_ref_ns: anchor_ns,
            anchor_ticks,
            f_calib_hz: f_mhz * 1e6,
            uncertainty_ns: 0.0,
        };
        let at_anchor = c.now_ns(anchor_ticks).unwrap();
        prop_assert!((at_anchor - anchor_ns).abs() < 1.0);
        let later = c.now_ns(anchor_ticks + dticks).unwrap();
        let expected = anchor_ns + dticks as f64 / (f_mhz * 1e6) * 1e9;
        prop_assert!((later - expected).abs() < 1.0 + expected.abs() * 1e-12);
        // Invalid state never produces a reading.
        let invalid = ClockState { valid: false, ..c };
        prop_assert!(invalid.now_ns(anchor_ticks).is_none());
    }

    /// A sealed frame truncated anywhere — including below the AEAD tag
    /// length — is rejected with a clean error, never a panic. Both the
    /// simulated fabric and the live UDP runtime feed attacker-controlled
    /// datagram lengths straight into `open`.
    #[test]
    fn truncated_sealed_frames_fail_cleanly(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 0..128),
        cut_fraction in 0.0..1.0f64,
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(2), key);
        let wire = table.seal(Addr(1), Addr(2), &payload);
        let cut = ((wire.len() as f64) * cut_fraction) as usize;
        if cut < wire.len() {
            prop_assert!(table.open(Addr(2), Addr(1), &wire[..cut]).is_err());
        }
    }

    /// Flipping any single bit of a sealed frame — header, ciphertext, or
    /// tag — breaks authentication: `open` errors cleanly and never
    /// returns corrupted plaintext.
    #[test]
    fn corrupted_sealed_frames_fail_authentication(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 1..128),
        flip_pos in any::<usize>(),
        flip_bit in 0u8..8,
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(2), key);
        let mut wire = table.seal(Addr(1), Addr(2), &payload);
        let pos = flip_pos % wire.len();
        wire[pos] ^= 1 << flip_bit;
        prop_assert!(table.open(Addr(2), Addr(1), &wire).is_err());
    }

    /// `open_into` writes no partial plaintext on any failure path: a
    /// rejected frame leaves the caller's scratch buffer untouched, so
    /// the runtimes never see half-decrypted bytes.
    #[test]
    fn open_into_writes_nothing_on_failure(
        key in proptest::array::uniform32(any::<u8>()),
        payload in proptest::collection::vec(any::<u8>(), 1..64),
        garbage in proptest::collection::vec(any::<u8>(), 0..64),
    ) {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(2), key);
        let wire = table.seal(Addr(1), Addr(2), &payload);
        let mut out = Vec::new();
        // Authentic frame round-trips.
        prop_assert!(table.open_into(Addr(2), Addr(1), &wire, &mut out).is_ok());
        prop_assert_eq!(&out, &payload);
        // A rejected frame must not append stale or partial bytes.
        out.clear();
        if garbage != wire && table.open_into(Addr(2), Addr(1), &garbage, &mut out).is_err() {
            prop_assert!(out.is_empty(), "failed open left {} bytes", out.len());
        }
    }
}
