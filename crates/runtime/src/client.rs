//! A client application workload against one Triad node.
//!
//! The paper measures availability from the node's state machine; this
//! actor measures it the way a *user* would — by asking for timestamps and
//! counting answers — and enforces the serving contract (monotonicity)
//! from outside the TCB.

use netsim::Addr;
use rand::Rng;
use sim::{Actor, Ctx, SimDuration};
use wire::Message;

use crate::event::SysEvent;
use crate::messaging::{open_delivery, send_message};
use crate::world::World;
use proto::NonceWindow;

/// Which client-facing API the workload exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClientMode {
    /// The base all-or-nothing API: `ClientTimeRequest`, denied while the
    /// node is tainted or calibrating.
    Timestamp,
    /// The graceful-degradation API: `TimeReadingRequest`, answered with a
    /// monotonic estimate plus an explicit uncertainty bound even while
    /// the node is degraded.
    Reading,
}

/// Periodically requests timestamps from a node and records the outcomes
/// into the target node's trace (`client_served` / `client_denied`).
///
/// # Panics
///
/// The actor panics the simulation if the node ever serves a
/// non-increasing timestamp — the one contract Triad must never break.
/// In [`ClientMode::Reading`] the monotonicity contract applies to the
/// reading estimates, across crashes and recalibrations included.
#[derive(Debug)]
pub struct ClientWorkload {
    me: Addr,
    target: Addr,
    target_index: usize,
    period: SimDuration,
    mode: ClientMode,
    next_nonce: u64,
    /// Window of requests currently awaiting their answer (capacity 1: the
    /// workload has one request in flight, and a new request supersedes an
    /// unanswered one). Responses outside the window are duplicates
    /// (fabric-level duplication) or stale reordered stragglers and are
    /// dropped — the network may replay them, so they must not count as
    /// serves nor feed the monotonicity check twice.
    pending: NonceWindow,
    last_timestamp: u64,
    /// Offset the first request by a seeded uniform draw in `(0, period]`
    /// so co-located fixed-period clients don't fire in lockstep. Off by
    /// default: existing experiment artifacts depend on the phase.
    start_jitter: bool,
}

impl ClientWorkload {
    /// Creates a workload from `me` against `target` with the given
    /// request period.
    ///
    /// The caller must provision a key for the pair and register the
    /// actor's address; `harness::ClusterBuilder::client` does both.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node address.
    pub fn new(me: Addr, target: Addr, period: SimDuration) -> Self {
        Self::with_mode(me, target, period, ClientMode::Timestamp)
    }

    /// Creates a workload using the degraded-tolerant reading API.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node address.
    pub fn new_reading(me: Addr, target: Addr, period: SimDuration) -> Self {
        Self::with_mode(me, target, period, ClientMode::Reading)
    }

    /// Creates a workload with an explicit [`ClientMode`].
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node address.
    pub fn with_mode(me: Addr, target: Addr, period: SimDuration, mode: ClientMode) -> Self {
        assert!(target.0 >= 1, "clients query nodes, not the TA");
        ClientWorkload {
            me,
            target,
            target_index: (target.0 - 1) as usize,
            period,
            mode,
            next_nonce: 0,
            pending: NonceWindow::new(1),
            last_timestamp: 0,
            start_jitter: false,
        }
    }

    /// Enables seeded start-phase jitter: the first request fires at a
    /// uniform draw in `(0, period]` instead of exactly at `period`, so a
    /// population of same-period clients spreads over the whole period
    /// instead of hammering the node in lockstep at `t = k·period`.
    #[must_use]
    pub fn with_start_jitter(mut self) -> Self {
        self.start_jitter = true;
        self
    }

    fn record_serve(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ts: u64) {
        assert!(
            ts > self.last_timestamp,
            "{} served non-monotonic timestamp {ts} after {}",
            self.target,
            self.last_timestamp
        );
        self.last_timestamp = ts;
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.target_index).client_served.increment(now);
    }

    fn record_denial(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.target_index).client_denied.increment(now);
    }
}

impl Actor<World, SysEvent> for ClientWorkload {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        let first = if self.start_jitter {
            SimDuration::from_nanos(ctx.rng.gen_range(1..=self.period.as_nanos()))
        } else {
            self.period
        };
        ctx.schedule_in(first, SysEvent::timer(0));
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        match ev {
            SysEvent::Timer { .. } => {
                self.next_nonce += 1;
                self.pending.insert(self.next_nonce);
                let req = match self.mode {
                    ClientMode::Timestamp => Message::ClientTimeRequest { nonce: self.next_nonce },
                    ClientMode::Reading => Message::TimeReadingRequest { nonce: self.next_nonce },
                };
                send_message(ctx, self.me, self.target, &req);
                ctx.schedule_in(self.period, SysEvent::timer(0));
            }
            SysEvent::Deliver(d) => {
                let now = ctx.now();
                match open_delivery(ctx.world, self.me, now, &d) {
                    Ok(Message::ClientTimeResponse { nonce, timestamp_ns }) => {
                        if !self.pending.take(nonce) {
                            return;
                        }
                        match timestamp_ns {
                            Some(ts) => self.record_serve(ctx, ts),
                            None => self.record_denial(ctx),
                        }
                    }
                    Ok(Message::TimeReadingResponse { nonce, reading }) => {
                        if !self.pending.take(nonce) {
                            return;
                        }
                        match reading {
                            Some(r) => self.record_serve(ctx, r.estimate_ns),
                            None => self.record_denial(ctx),
                        }
                    }
                    _ => {}
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "not the TA")]
    fn client_cannot_target_the_ta() {
        ClientWorkload::new(Addr(100), Addr(0), SimDuration::from_millis(10));
    }
}
