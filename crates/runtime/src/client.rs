//! A client application workload against one Triad node.
//!
//! The paper measures availability from the node's state machine; this
//! actor measures it the way a *user* would — by asking for timestamps and
//! counting answers — and enforces the serving contract (monotonicity)
//! from outside the TCB.

use netsim::Addr;
use sim::{Actor, Ctx, SimDuration};
use wire::Message;

use crate::event::SysEvent;
use crate::messaging::{open_delivery, send_message};
use crate::world::World;

/// Periodically requests timestamps from a node and records the outcomes
/// into the target node's trace (`client_served` / `client_denied`).
///
/// # Panics
///
/// The actor panics the simulation if the node ever serves a
/// non-increasing timestamp — the one contract Triad must never break.
#[derive(Debug)]
pub struct ClientWorkload {
    me: Addr,
    target: Addr,
    target_index: usize,
    period: SimDuration,
    next_nonce: u64,
    last_timestamp: u64,
}

impl ClientWorkload {
    /// Creates a workload from `me` against `target` with the given
    /// request period.
    ///
    /// The caller must provision a key for the pair and register the
    /// actor's address; `harness::ClusterBuilder::client` does both.
    ///
    /// # Panics
    ///
    /// Panics if `target` is not a node address.
    pub fn new(me: Addr, target: Addr, period: SimDuration) -> Self {
        assert!(target.0 >= 1, "clients query nodes, not the TA");
        ClientWorkload {
            me,
            target,
            target_index: (target.0 - 1) as usize,
            period,
            next_nonce: 0,
            last_timestamp: 0,
        }
    }
}

impl Actor<World, SysEvent> for ClientWorkload {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        ctx.schedule_in(self.period, SysEvent::timer(0));
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        match ev {
            SysEvent::Timer { .. } => {
                self.next_nonce += 1;
                send_message(
                    ctx,
                    self.me,
                    self.target,
                    &Message::ClientTimeRequest { nonce: self.next_nonce },
                );
                ctx.schedule_in(self.period, SysEvent::timer(0));
            }
            SysEvent::Deliver(d) => {
                if let Some(Message::ClientTimeResponse { timestamp_ns, .. }) =
                    open_delivery(ctx.world, self.me, &d)
                {
                    let now = ctx.now();
                    let trace = ctx.world.recorder.node_mut(self.target_index);
                    match timestamp_ns {
                        Some(ts) => {
                            assert!(
                                ts > self.last_timestamp,
                                "{} served non-monotonic timestamp {ts} after {}",
                                self.target,
                                self.last_timestamp
                            );
                            self.last_timestamp = ts;
                            trace.client_served.increment(now);
                        }
                        None => trace.client_denied.increment(now),
                    }
                }
            }
            _ => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[should_panic(expected = "not the TA")]
    fn client_cannot_target_the_ta() {
        ClientWorkload::new(Addr(100), Addr(0), SimDuration::from_millis(10));
    }
}
