//! The environment driver: injects AEX events into node actors.
//!
//! AEX arrival is OS behaviour, i.e. *outside* the protocol — so it is
//! driven by a dedicated actor rather than by the nodes themselves. The
//! driver owns one [`AexModel`] per node (per-core interruptions) plus an
//! optional machine-wide model whose events hit **all** nodes at the same
//! instant — the correlated simultaneous AEXs that §IV-A.2 identifies as
//! the cause of Figure 2a's sawtooth (all nodes taint together, peer
//! untainting fails, everyone goes back to the TA).

use sim::{Actor, ActorId, Ctx, SimDuration};
use tsc::AexModel;

use crate::event::SysEvent;
use crate::world::World;

const MACHINE_TOKEN: u64 = u64::MAX;

/// Drives per-node and machine-wide AEX injection.
pub struct EnvDriver {
    node_actors: Vec<ActorId>,
    per_node: Vec<Option<Box<dyn AexModel>>>,
    machine_wide: Option<Box<dyn AexModel>>,
}

impl EnvDriver {
    /// Creates a driver for the given node actors.
    ///
    /// `per_node[i]` generates core-local AEXs for `node_actors[i]`
    /// (`None` = that node's core is perfectly isolated); `machine_wide`
    /// generates interrupts hitting every node simultaneously.
    ///
    /// # Panics
    ///
    /// Panics if the model list length differs from the actor list.
    pub fn new(
        node_actors: Vec<ActorId>,
        per_node: Vec<Option<Box<dyn AexModel>>>,
        machine_wide: Option<Box<dyn AexModel>>,
    ) -> Self {
        assert_eq!(node_actors.len(), per_node.len(), "one AEX model slot per node actor");
        EnvDriver { node_actors, per_node, machine_wide }
    }

    fn arm(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, token: u64) {
        let now = ctx.now();
        let delay = if token == MACHINE_TOKEN {
            self.machine_wide.as_mut().map(|m| m.next_delay(now, ctx.rng))
        } else {
            self.per_node[token as usize].as_mut().map(|m| m.next_delay(now, ctx.rng))
        };
        if let Some(d) = delay {
            ctx.schedule_in(d, SysEvent::timer(token));
        }
    }
}

impl std::fmt::Debug for EnvDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EnvDriver")
            .field("nodes", &self.node_actors.len())
            .field("machine_wide", &self.machine_wide.is_some())
            .finish()
    }
}

impl Actor<World, SysEvent> for EnvDriver {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        for i in 0..self.node_actors.len() {
            self.arm(ctx, i as u64);
        }
        self.arm(ctx, MACHINE_TOKEN);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        let SysEvent::Timer { token } = ev else {
            return;
        };
        if token == MACHINE_TOKEN {
            for &actor in &self.node_actors {
                ctx.send(actor, SimDuration::ZERO, SysEvent::Aex { machine_wide: true });
            }
        } else {
            let actor = self.node_actors[token as usize];
            ctx.send(actor, SimDuration::ZERO, SysEvent::Aex { machine_wide: false });
        }
        self.arm(ctx, token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Host;
    use netsim::{DelayModel, Network};
    use sim::{SimTime, Simulation};
    use tsc::Periodic;

    #[derive(Default)]
    struct AexCounter {
        local: u32,
        machine: u32,
    }

    impl Actor<World, SysEvent> for AexCounter {
        fn on_event(&mut self, _ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            if let SysEvent::Aex { machine_wide } = ev {
                if machine_wide {
                    self.machine += 1;
                } else {
                    self.local += 1;
                }
            }
        }
    }

    fn build(n: usize) -> (Simulation<World, SysEvent>, Vec<ActorId>) {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let world = World::new(net, (0..n).map(|_| Host::paper_default()).collect());
        let mut s = Simulation::new(world, 7);
        let ids: Vec<ActorId> =
            (0..n).map(|_| s.add_actor(Box::new(AexCounter::default()))).collect();
        (s, ids)
    }

    #[test]
    fn periodic_per_node_aex_delivery() {
        let (mut s, ids) = build(2);
        let driver = EnvDriver::new(
            ids.clone(),
            vec![
                Some(Box::new(Periodic { period: SimDuration::from_secs(1) })),
                Some(Box::new(Periodic { period: SimDuration::from_secs(2) })),
            ],
            None,
        );
        s.add_actor(Box::new(driver));
        s.run_until(SimTime::from_secs_f64(10.5));
        // Node 0: AEX at 1..10 → 10; node 1: at 2,4,6,8,10 → 5.
        assert!(s.dispatched() >= 15);
    }

    #[test]
    fn machine_wide_hits_all_nodes_simultaneously() {
        let (mut s, ids) = build(3);
        let driver = EnvDriver::new(
            ids,
            vec![None, None, None],
            Some(Box::new(Periodic { period: SimDuration::from_secs(5) })),
        );
        s.add_actor(Box::new(driver));
        s.run_until(SimTime::from_secs(11));
        // 2 machine-wide rounds × 3 nodes of Aex + 2 driver timers (+start).
        assert!(s.dispatched() >= 8);
    }

    #[test]
    #[should_panic(expected = "one AEX model slot per node actor")]
    fn mismatched_lengths_rejected() {
        let (mut s, ids) = build(2);
        let driver = EnvDriver::new(ids, vec![None], None);
        s.add_actor(Box::new(driver));
    }
}
