//! Periodic drift sampling against the reference clock.

use sim::{Actor, Ctx, SimDuration};

use crate::event::SysEvent;
use crate::world::World;

/// Samples every node's clock drift at a fixed reference-time cadence.
///
/// Drift is `node_timestamp − reference_time` in milliseconds, evaluated
/// from the node's published [`crate::ClockState`] — the simulation
/// equivalent of the paper's external measurement harness comparing node
/// timestamps against the TA's clock. Nodes that have not calibrated yet
/// produce no sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Sampler {
    /// Sampling period (the figures use 250 ms – 1 s).
    pub interval: SimDuration,
}

impl Actor<World, SysEvent> for Sampler {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        ctx.schedule_in(self.interval, SysEvent::Sample);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        if !matches!(ev, SysEvent::Sample) {
            return;
        }
        let now = ctx.now();
        let ref_ns = now.as_nanos() as f64;
        for i in 0..ctx.world.node_count() {
            let addr = World::node_addr(i);
            let ticks = ctx.world.read_tsc(addr, now);
            if let Some(node_ns) = ctx.world.clocks[i].now_ns(ticks) {
                let drift_ms = (node_ns - ref_ns) / 1e6;
                ctx.world.recorder.node_mut(i).drift_ms.push(now, drift_ms);
            }
        }
        ctx.schedule_in(self.interval, SysEvent::Sample);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{ClockState, Host};
    use netsim::{DelayModel, Network};
    use sim::{SimTime, Simulation};

    #[test]
    fn sampler_records_drift_from_published_clock_state() {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let mut world = World::new(net, vec![Host::paper_default(), Host::paper_default()]);
        // Node 1: perfectly calibrated → ~0 drift.
        world.clocks[0] = ClockState {
            valid: true,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: tsc::PAPER_TSC_HZ,
            uncertainty_ns: 0.0,
        };
        // Node 2: calibrated 10% high (an F+ victim) → ≈ −91 ms/s drift.
        world.clocks[1] = ClockState {
            valid: true,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: tsc::PAPER_TSC_HZ * 1.1,
            uncertainty_ns: 0.0,
        };
        let mut s = Simulation::new(world, 1);
        s.add_actor(Box::new(Sampler { interval: SimDuration::from_millis(500) }));
        s.run_until(SimTime::from_secs(10));

        let w = s.world();
        let d0 = w.recorder.node(0).drift_ms.clone();
        let d1 = w.recorder.node(1).drift_ms.clone();
        assert_eq!(d0.len(), 20);
        assert_eq!(d1.len(), 20);
        let (_, last0) = d0.last().unwrap();
        let (_, last1) = d1.last().unwrap();
        assert!(last0.abs() < 0.001, "honest node drift {last0} ms");
        assert!((last1 + 909.1).abs() < 1.0, "victim drift after 10 s: {last1} ms");
        let slope = d1.slope_per_sec().unwrap();
        assert!((slope + 90.9).abs() < 0.2, "drift rate {slope} ms/s");
    }

    #[test]
    fn uncalibrated_nodes_are_skipped() {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let world = World::new(net, vec![Host::paper_default()]);
        let mut s = Simulation::new(world, 1);
        s.add_actor(Box::new(Sampler { interval: SimDuration::from_secs(1) }));
        s.run_until(SimTime::from_secs(5));
        assert!(s.world().recorder.node(0).drift_ms.is_empty());
    }
}
