//! # runtime — composition layer wiring protocol actors into the simulation
//!
//! Sits between the substrate crates (`sim`, `tsc`, `netsim`, `tt-crypto`,
//! `wire`, `trace`) and the protocol crates (`triad-core`, `authority`,
//! `attacks`, `resilient`):
//!
//! - [`World`]: the shared environment — per-node [`Host`] platforms
//!   (TSC + core + INC model), the network fabric, the pairwise
//!   [`KeyTable`], each node's published [`ClockState`], and the run's
//!   [`trace::Recorder`];
//! - [`SysEvent`]: the one event vocabulary all actors share;
//! - [`send_message`] / [`open_delivery`]: sealed protocol messaging;
//! - [`EnvDriver`]: OS-side AEX injection (per-core and machine-wide);
//! - [`Sampler`]: the external drift-measurement harness.
//!
//! Address conventions: `Addr(0)` is the Time Authority, `Addr(i + 1)` is
//! node index `i` (the paper's "Node i+1").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod client;
mod env;
mod event;
mod keys;
mod machine;
mod messaging;
mod sampler;
mod world;

pub use client::{ClientMode, ClientWorkload};
pub use env::EnvDriver;
pub use event::SysEvent;
pub use keys::{link_aad, KeyTable};
pub use machine::MachineActor;
pub use messaging::{open_delivery, send_message, send_message_batch, DropReason};
pub use proto::NonceWindow;
pub use sampler::Sampler;
pub use world::{ClockState, Host, Lie, World};
