//! The system-wide event vocabulary.

use netsim::Delivery;

/// Every event that can be delivered to an actor in the composed
//  simulation.
///
/// Protocol actors receive network [`SysEvent::Deliver`] events and their
/// own timers; the environment driver injects [`SysEvent::Aex`] taint
/// events exactly as the OS would interrupt an enclave core.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysEvent {
    /// A sealed datagram arriving from the network fabric.
    Deliver(Delivery),
    /// An Asynchronous Enclave Exit hits this node's monitoring core.
    /// `machine_wide` marks interrupts that hit all cores simultaneously
    /// (the correlated AEXs of §IV-A.2 that force TA recalibration).
    Aex {
        /// True when the same interrupt hits every node at this instant.
        machine_wide: bool,
    },
    /// The enclave thread resumes after an AEX; AEX-Notify runs the
    /// node's untainting logic now.
    AexResume,
    /// A timer the receiving actor armed for itself; `token` is
    /// actor-private.
    Timer {
        /// Actor-defined discriminator.
        token: u64,
    },
    /// Periodic metrics sampling tick (driven by the [`crate::Sampler`]).
    Sample,
    /// The node's platform crashes: all enclave state (calibration,
    /// pending probes, peer rounds) is lost. Only a sealed monotonic
    /// serving floor survives, as Triad persists it outside the enclave.
    /// The node ignores every event until [`SysEvent::Restart`].
    Crash,
    /// The crashed node boots again and must re-enter FullCalib from
    /// scratch before serving time.
    Restart,
}

impl SysEvent {
    /// Convenience constructor for a timer event.
    pub fn timer(token: u64) -> Self {
        SysEvent::Timer { token }
    }
}
