//! The simulation driver for [`proto::Machine`] state machines.
//!
//! [`MachineActor`] is the thin adapter that lets a pure protocol machine
//! ride the discrete-event simulation: it opens sealed deliveries,
//! translates [`SysEvent`]s into [`proto::Input`]s, and interprets every
//! [`proto::Env`] effect **inline, in emission order**, against the sim
//! world — sends draw link delays from the shared seeded RNG at the exact
//! call sites the pre-refactor actors used, which is what keeps seeded
//! artifacts byte-identical across the effect-boundary refactor.

use std::collections::BTreeMap;

use netsim::Addr;
use proto::{ClockState, Env, Input, Lie, Machine, AEX_RESUME_TOKEN};
use rand::rngs::StdRng;
use sim::{Actor, Ctx, EventId, SimDuration, SimTime};
use trace::{NodeStateTag, Recorder};
use wire::Message;

use crate::event::SysEvent;
use crate::messaging::{open_delivery, send_message, send_message_batch};
use crate::world::World;

/// Adapts a [`proto::Machine`] into a simulation [`Actor`].
///
/// Timer identity: machines arm timers by `u64` token; the adapter holds
/// the token → [`EventId`] map so [`proto::Env::cancel_timer`] reaches the
/// wheel's O(1) tombstone cancellation. Tokens of concurrently armed
/// timers must be distinct (the protocol machines derive them from
/// nonces/epochs), matching the uniqueness the old per-actor `EventId`
/// handles provided.
#[derive(Debug)]
pub struct MachineActor<M: Machine> {
    machine: M,
    timers: BTreeMap<u64, EventId>,
}

impl<M: Machine> MachineActor<M> {
    /// Wraps `machine` for the simulation driver.
    pub fn new(machine: M) -> Self {
        MachineActor { machine, timers: BTreeMap::new() }
    }

    /// The wrapped machine.
    pub fn inner(&self) -> &M {
        &self.machine
    }

    /// Mutable access to the wrapped machine (test setup).
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.machine
    }

    fn step(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, input: Input) {
        let mut env = SimEnv {
            me: self.machine.addr(),
            node_index: self.machine.node_index(),
            ctx,
            timers: &mut self.timers,
        };
        self.machine.on_input(&mut env, input);
    }
}

impl<M: Machine> Actor<World, SysEvent> for MachineActor<M> {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        let mut env = SimEnv {
            me: self.machine.addr(),
            node_index: self.machine.node_index(),
            ctx,
            timers: &mut self.timers,
        };
        self.machine.on_start(&mut env);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        if self.machine.crashed() {
            // A downed platform processes nothing — deliveries are not
            // even opened; only a restart fault event brings it back.
            if ev == SysEvent::Restart {
                self.step(ctx, Input::Restart);
            }
            return;
        }
        let input = match ev {
            SysEvent::Deliver(d) => {
                let now = ctx.now();
                let Ok(msg) = open_delivery(ctx.world, self.machine.addr(), now, &d) else {
                    return; // forged, tampered, or corrupted datagram (counted)
                };
                Input::Message { src: d.src, msg }
            }
            SysEvent::Aex { machine_wide } => Input::Aex { machine_wide },
            SysEvent::AexResume => Input::AexResume,
            SysEvent::Crash => Input::Crash,
            SysEvent::Restart => Input::Restart, // not crashed: spurious
            SysEvent::Timer { token } => {
                // The fired event is spent; drop its cancellation handle.
                self.timers.remove(&token);
                if token == AEX_RESUME_TOKEN {
                    Input::AexResume
                } else {
                    Input::Timer { token }
                }
            }
            SysEvent::Sample => return, // the Sampler's private event
        };
        self.step(ctx, input);
    }
}

/// The simulation-side [`Env`]: every capability resolves against the
/// shared [`World`] and the event wheel, immediately.
struct SimEnv<'e, 'w> {
    me: Addr,
    node_index: Option<usize>,
    ctx: &'e mut Ctx<'w, World, SysEvent>,
    timers: &'e mut BTreeMap<u64, EventId>,
}

impl SimEnv<'_, '_> {
    fn index(&self) -> usize {
        // tt-lint: allow(panic-surface) — a node-only capability (TSC, INC,
        // clock publishing) invoked by a machine wired without a node index
        // is a local construction error, never reachable from network input.
        self.node_index.expect("machine has no co-located node for this capability")
    }
}

impl Env for SimEnv<'_, '_> {
    fn now(&self) -> SimTime {
        self.ctx.now()
    }

    fn rng(&mut self) -> &mut StdRng {
        self.ctx.rng
    }

    fn send(&mut self, dst: Addr, msg: &Message) -> bool {
        send_message(self.ctx, self.me, dst, msg)
    }

    fn send_batch(&mut self, batch: &[(Addr, Message)]) -> usize {
        send_message_batch(self.ctx, self.me, batch)
    }

    fn set_timer(&mut self, token: u64, after: SimDuration) {
        let id = self.ctx.schedule_in(after, SysEvent::timer(token));
        self.timers.insert(token, id);
    }

    fn cancel_timer(&mut self, token: u64) {
        if let Some(id) = self.timers.remove(&token) {
            self.ctx.cancel(id);
        }
    }

    fn read_tsc(&mut self) -> u64 {
        let now = self.ctx.now();
        self.ctx.world.read_tsc(World::node_addr(self.index()), now)
    }

    fn sample_inc(&mut self, wall: SimDuration) -> u64 {
        let host = self.ctx.world.host(World::node_addr(self.index()));
        let core_hz = host.core.current_hz();
        let inc_model = host.inc.clone();
        inc_model.measure(wall, core_hz, self.ctx.rng)
    }

    fn publish_clock(&mut self, clock: ClockState) {
        let i = self.index();
        self.ctx.world.clocks[i] = clock;
    }

    fn clock(&self, i: usize) -> ClockState {
        self.ctx.world.clocks[i]
    }

    fn node_state(&self, i: usize) -> Option<NodeStateTag> {
        self.ctx.world.recorder.node(i).states.state_at(self.ctx.now())
    }

    fn lie(&self, i: usize) -> Option<Lie> {
        self.ctx.world.lies[i]
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.ctx.world.recorder
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Host;
    use netsim::{DelayModel, Network};
    use sim::Simulation;

    /// A machine that arms, cancels, and re-arms timers and publishes a
    /// clock, exercising every adapter path.
    struct Pinger {
        me: Addr,
        fired: Vec<u64>,
    }

    impl Machine for Pinger {
        fn addr(&self) -> Addr {
            self.me
        }
        fn node_index(&self) -> Option<usize> {
            Some((self.me.0 - 1) as usize)
        }
        fn on_start(&mut self, env: &mut dyn Env) {
            env.set_timer(1, SimDuration::from_millis(10));
            env.set_timer(2, SimDuration::from_millis(20));
            env.cancel_timer(2); // never fires
            env.set_timer(3, SimDuration::from_millis(30));
        }
        fn on_input(&mut self, env: &mut dyn Env, input: Input) {
            if let Input::Timer { token } = input {
                self.fired.push(token);
                if token == 1 {
                    let ticks = env.read_tsc();
                    env.publish_clock(ClockState {
                        valid: true,
                        anchor_ref_ns: 0.0,
                        anchor_ticks: ticks,
                        f_calib_hz: 1e9,
                        uncertainty_ns: 0.0,
                    });
                }
            }
        }
    }

    #[test]
    fn timers_cancel_by_token_and_clock_publishes() {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let world = World::new(net, vec![Host::paper_default()]);
        let mut s = Simulation::new(world, 1);
        let id = s.add_actor(Box::new(MachineActor::new(Pinger { me: Addr(1), fired: vec![] })));
        s.world_mut().register_actor(Addr(1), id);
        s.run_until(SimTime::from_secs(1));
        assert!(s.world().clocks[0].valid, "timer 1 published the clock");
        // Timer 2 was tombstoned before it could fire.
        assert!(s.dispatched() >= 2);
    }
}
