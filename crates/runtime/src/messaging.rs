//! Sealed protocol messaging over the simulated fabric.

use netsim::{Addr, Delivery};
use sim::{Ctx, SimTime};
use wire::{DecodeError, Message};

use crate::event::SysEvent;
use crate::world::World;

/// Encodes, seals, and dispatches `msg` from `src` to `dst`, scheduling the
/// delivery event on the destination actor.
///
/// Returns `false` when the fabric killed the datagram (loss or an
/// attacker drop) — senders see nothing, exactly like UDP.
///
/// # Panics
///
/// Panics if no key is provisioned for the pair or `dst` has no registered
/// actor.
pub fn send_message(
    ctx: &mut Ctx<'_, World, SysEvent>,
    src: Addr,
    dst: Addr,
    msg: &Message,
) -> bool {
    let now = ctx.now();
    {
        // Split the world into its disjoint hot-path parts so the scratch
        // buffers can feed the key table and fabric without cloning.
        let World { ref mut net, ref mut keys, ref mut scratch, .. } = *ctx.world;
        scratch.plain.clear();
        msg.encode_into(&mut scratch.plain);
        scratch.wire.clear();
        keys.seal_into(src, dst, &scratch.plain, &mut scratch.wire);
        scratch.deliveries.clear();
        net.dispatch_into(now, ctx.rng, src, dst, &scratch.wire, &mut scratch.deliveries);
    }
    if ctx.world.scratch.deliveries.is_empty() {
        return false;
    }
    let target = ctx.world.actor_of(dst);
    // Scheduling needs `ctx` whole, so lift the staged deliveries out of the
    // world for the duration and hand the (emptied) buffer back after.
    let mut deliveries = std::mem::take(&mut ctx.world.scratch.deliveries);
    for (deliver_at, delivery) in deliveries.drain(..) {
        ctx.send_at(target, deliver_at, SysEvent::Deliver(delivery));
    }
    ctx.world.scratch.deliveries = deliveries;
    true
}

/// Batch form of [`send_message`]: encodes, seals, and dispatches every
/// `(dst, msg)` entry in order, returning how many the fabric accepted.
///
/// Consecutive entries to the *same* destination are sealed in one AEAD
/// pass ([`crate::keys::KeyTable::seal_batch_into`]), keeping the AES
/// pipeline full across frame boundaries. The wire bytes, RNG draws, and
/// delivery scheduling order are identical to calling [`send_message`]
/// once per entry: sealing draws no randomness, frames are dispatched in
/// message order, and each run's deliveries are scheduled in staging
/// order — so simulation artifacts cannot depend on which path sent them.
///
/// # Panics
///
/// Panics if any pair has no provisioned key or a destination has no
/// registered actor.
pub fn send_message_batch(
    ctx: &mut Ctx<'_, World, SysEvent>,
    src: Addr,
    batch: &[(Addr, Message)],
) -> usize {
    let now = ctx.now();
    let mut accepted = 0;
    let mut i = 0;
    while i < batch.len() {
        // One run = the longest stretch of consecutive same-destination
        // messages; each run shares a session, so it seals as one batch.
        let dst = batch[i].0;
        let mut j = i + 1;
        while j < batch.len() && batch[j].0 == dst {
            j += 1;
        }
        {
            let World { ref mut net, ref mut keys, ref mut scratch, .. } = *ctx.world;
            scratch.plain.clear();
            scratch.parts.clear();
            for (_, msg) in &batch[i..j] {
                let start = scratch.plain.len();
                msg.encode_into(&mut scratch.plain);
                scratch.parts.push(start..scratch.plain.len());
            }
            scratch.wire.clear();
            scratch.frames.clear();
            keys.seal_batch_into(
                src,
                dst,
                &scratch.plain,
                &scratch.parts,
                &mut scratch.wire,
                &mut scratch.frames,
            );
            scratch.deliveries.clear();
            for frame in &scratch.frames {
                let staged = scratch.deliveries.len();
                net.dispatch_into(
                    now,
                    ctx.rng,
                    src,
                    dst,
                    &scratch.wire[frame.clone()],
                    &mut scratch.deliveries,
                );
                if scratch.deliveries.len() > staged {
                    accepted += 1;
                }
            }
        }
        if !ctx.world.scratch.deliveries.is_empty() {
            let target = ctx.world.actor_of(dst);
            let mut deliveries = std::mem::take(&mut ctx.world.scratch.deliveries);
            for (deliver_at, delivery) in deliveries.drain(..) {
                ctx.send_at(target, deliver_at, SysEvent::Deliver(delivery));
            }
            ctx.world.scratch.deliveries = deliveries;
        }
        i = j;
    }
    accepted
}

/// Why an inbound datagram was dropped before reaching a machine.
///
/// The decode → machine-input hot path never panics on network input;
/// every failure is one of these, counted into the world recorder's
/// [`trace::ServiceTrace`] drop counters so runs can distinguish "the
/// fabric ate it" from "someone is sending garbage".
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// The AEAD seal failed to authenticate: forged, tampered,
    /// replayed, or misrouted.
    Auth,
    /// The seal opened but the plaintext is not a valid protocol
    /// message.
    Decode(DecodeError),
}

/// Opens and decodes a delivery addressed to `me` at simulation time
/// `now`.
///
/// # Errors
///
/// Returns the [`DropReason`] when authentication or decoding fails (a
/// tampered, replayed, or corrupted datagram); the failure is already
/// counted into the world recorder's drop counters — callers ignore the
/// datagram, as a UDP service would.
pub fn open_delivery(
    world: &mut World,
    me: Addr,
    now: SimTime,
    delivery: &Delivery,
) -> Result<Message, DropReason> {
    debug_assert_eq!(delivery.dst, me, "delivery routed to the wrong actor");
    let World { ref keys, ref mut scratch, .. } = *world;
    scratch.plain.clear();
    if keys.open_into(me, delivery.src, &delivery.payload, &mut scratch.plain).is_err() {
        world.recorder.service.drops_auth.increment(now);
        return Err(DropReason::Auth);
    }
    match Message::decode(&world.scratch.plain) {
        Ok(msg) => Ok(msg),
        Err(e) => {
            world.recorder.service.drops_decode.increment(now);
            Err(DropReason::Decode(e))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Host;
    use netsim::{DelayModel, Network};
    use sim::{Actor, SimDuration, SimTime, Simulation};

    /// Echoes every decoded message's kind into the world recorder label
    /// stream (abused here as a scratch log via calibrations_hz).
    struct Responder {
        me: Addr,
        log: Vec<&'static str>,
    }

    impl Actor<World, SysEvent> for Responder {
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            if let SysEvent::Deliver(d) = ev {
                let now = ctx.now();
                if let Ok(msg) = open_delivery(ctx.world, self.me, now, &d) {
                    self.log.push(msg.kind());
                    if matches!(msg, Message::PeerTimeRequest { .. }) {
                        send_message(
                            ctx,
                            self.me,
                            d.src,
                            &Message::PeerTimeResponse { nonce: 1, timestamp_ns: 42 },
                        );
                    }
                } else {
                    self.log.push("garbage");
                }
            }
        }
    }

    struct Requester {
        me: Addr,
        peer: Addr,
        got_response: bool,
    }

    impl Actor<World, SysEvent> for Requester {
        fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
            // Delay the first send past start so actor registration exists.
            ctx.schedule_in(SimDuration::from_millis(1), SysEvent::timer(0));
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            match ev {
                SysEvent::Timer { .. } => {
                    send_message(ctx, self.me, self.peer, &Message::PeerTimeRequest { nonce: 1 });
                }
                SysEvent::Deliver(d) => {
                    let now = ctx.now();
                    if let Ok(Message::PeerTimeResponse { timestamp_ns, .. }) =
                        open_delivery(ctx.world, self.me, now, &d)
                    {
                        assert_eq!(timestamp_ns, 42);
                        self.got_response = true;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn request_response_round_trip_over_sealed_fabric() {
        let net = Network::new(DelayModel::Constant(SimDuration::from_micros(200)), 0.0);
        let mut world = World::new(net, vec![Host::paper_default(), Host::paper_default()]);
        world.provision_all_keys(1);
        let mut s = Simulation::new(world, 1);
        let a1 =
            s.add_actor(Box::new(Requester { me: Addr(1), peer: Addr(2), got_response: false }));
        let a2 = s.add_actor(Box::new(Responder { me: Addr(2), log: vec![] }));
        s.world_mut().register_actor(Addr(1), a1);
        s.world_mut().register_actor(Addr(2), a2);
        s.run_until(SimTime::from_secs(1));
        // Round trip = 1 ms initial delay + 2 × 200 µs.
        assert_eq!(s.now(), SimTime::from_secs(1));
        assert!(s.dispatched() >= 3);
    }

    /// Counts every message that authenticates and decodes.
    struct Sink {
        me: Addr,
        got: Vec<&'static str>,
    }

    impl Actor<World, SysEvent> for Sink {
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            if let SysEvent::Deliver(d) = ev {
                let now = ctx.now();
                if let Ok(msg) = open_delivery(ctx.world, self.me, now, &d) {
                    self.got.push(msg.kind());
                }
            }
        }
    }

    /// Sends a mixed batch — a same-destination run plus a second
    /// destination — through the one-pass batch path.
    struct BatchSender {
        me: Addr,
        peers: (Addr, Addr),
    }

    impl Actor<World, SysEvent> for BatchSender {
        fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
            ctx.schedule_in(SimDuration::from_millis(1), SysEvent::timer(0));
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            if matches!(ev, SysEvent::Timer { .. }) {
                let batch = [
                    (self.peers.0, Message::PeerTimeRequest { nonce: 1 }),
                    (self.peers.0, Message::PeerTimeRequest { nonce: 2 }),
                    (self.peers.1, Message::PeerTimeResponse { nonce: 3, timestamp_ns: 9 }),
                ];
                assert_eq!(send_message_batch(ctx, self.me, &batch), 3);
            }
        }
    }

    #[test]
    fn batched_sends_authenticate_at_every_destination() {
        let net = Network::new(DelayModel::Constant(SimDuration::from_micros(200)), 0.0);
        let hosts = vec![Host::paper_default(), Host::paper_default(), Host::paper_default()];
        let mut world = World::new(net, hosts);
        world.provision_all_keys(7);
        let mut s = Simulation::new(world, 7);
        let a1 = s.add_actor(Box::new(BatchSender { me: Addr(1), peers: (Addr(2), Addr(3)) }));
        let a2 = s.add_actor(Box::new(Sink { me: Addr(2), got: vec![] }));
        let a3 = s.add_actor(Box::new(Sink { me: Addr(3), got: vec![] }));
        s.world_mut().register_actor(Addr(1), a1);
        s.world_mut().register_actor(Addr(2), a2);
        s.world_mut().register_actor(Addr(3), a3);
        s.run_until(SimTime::from_secs(1));
        // Every frame of the one-pass batch opened under its own session:
        // the run of two to node 2, the single to node 3.
        assert_eq!(s.dispatched(), 4, "timer + three deliveries");
    }

    #[test]
    fn tampered_payload_is_ignored() {
        // Interceptors cannot rewrite payloads (read-only), so model the
        // strongest forgery: an attacker-injected datagram of chosen bytes.
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let mut world = World::new(net, vec![Host::paper_default()]);
        world.provision_all_keys(2);
        let forged = Delivery {
            src: Addr(0),
            dst: Addr(1),
            payload: vec![0u8; 64],
            send_time: SimTime::ZERO,
        };
        assert_eq!(
            open_delivery(&mut world, Addr(1), SimTime::ZERO, &forged),
            Err(DropReason::Auth)
        );
        assert_eq!(world.recorder.service.drops_auth.count(), 1);
    }

    #[test]
    fn authenticated_garbage_counts_a_decode_drop() {
        // Seal valid ciphertext over an invalid plaintext: authentication
        // passes, decoding must fail with a typed reason, not a panic.
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let mut world = World::new(net, vec![Host::paper_default(), Host::paper_default()]);
        world.provision_all_keys(3);
        let mut sealed = Vec::new();
        world.keys.seal_into(Addr(2), Addr(1), &[0xFF; 8], &mut sealed);
        let garbled =
            Delivery { src: Addr(2), dst: Addr(1), payload: sealed, send_time: SimTime::ZERO };
        let got = open_delivery(&mut world, Addr(1), SimTime::ZERO, &garbled);
        assert!(matches!(got, Err(DropReason::Decode(_))), "got {got:?}");
        assert_eq!(world.recorder.service.drops_decode.count(), 1);
        assert_eq!(world.recorder.service.drops(), 1);
    }
}
