//! Sealed protocol messaging over the simulated fabric.

use netsim::{Addr, Delivery};
use sim::Ctx;
use wire::Message;

use crate::event::SysEvent;
use crate::world::World;

/// Encodes, seals, and dispatches `msg` from `src` to `dst`, scheduling the
/// delivery event on the destination actor.
///
/// Returns `false` when the fabric killed the datagram (loss or an
/// attacker drop) — senders see nothing, exactly like UDP.
///
/// # Panics
///
/// Panics if no key is provisioned for the pair or `dst` has no registered
/// actor.
pub fn send_message(
    ctx: &mut Ctx<'_, World, SysEvent>,
    src: Addr,
    dst: Addr,
    msg: &Message,
) -> bool {
    let now = ctx.now();
    {
        // Split the world into its disjoint hot-path parts so the scratch
        // buffers can feed the key table and fabric without cloning.
        let World { ref mut net, ref mut keys, ref mut scratch, .. } = *ctx.world;
        scratch.plain.clear();
        msg.encode_into(&mut scratch.plain);
        scratch.wire.clear();
        keys.seal_into(src, dst, &scratch.plain, &mut scratch.wire);
        scratch.deliveries.clear();
        net.dispatch_into(now, ctx.rng, src, dst, &scratch.wire, &mut scratch.deliveries);
    }
    if ctx.world.scratch.deliveries.is_empty() {
        return false;
    }
    let target = ctx.world.actor_of(dst);
    // Scheduling needs `ctx` whole, so lift the staged deliveries out of the
    // world for the duration and hand the (emptied) buffer back after.
    let mut deliveries = std::mem::take(&mut ctx.world.scratch.deliveries);
    for (deliver_at, delivery) in deliveries.drain(..) {
        ctx.send_at(target, deliver_at, SysEvent::Deliver(delivery));
    }
    ctx.world.scratch.deliveries = deliveries;
    true
}

/// Opens and decodes a delivery addressed to `me`.
///
/// Returns `None` when authentication or decoding fails (a tampered,
/// replayed, or corrupted datagram) — the node silently ignores it, as a
/// UDP service would.
pub fn open_delivery(world: &mut World, me: Addr, delivery: &Delivery) -> Option<Message> {
    debug_assert_eq!(delivery.dst, me, "delivery routed to the wrong actor");
    let World { ref keys, ref mut scratch, .. } = *world;
    scratch.plain.clear();
    keys.open_into(me, delivery.src, &delivery.payload, &mut scratch.plain).ok()?;
    Message::decode(&scratch.plain).ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Host;
    use netsim::{DelayModel, Network};
    use sim::{Actor, SimDuration, SimTime, Simulation};

    /// Echoes every decoded message's kind into the world recorder label
    /// stream (abused here as a scratch log via calibrations_hz).
    struct Responder {
        me: Addr,
        log: Vec<&'static str>,
    }

    impl Actor<World, SysEvent> for Responder {
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            if let SysEvent::Deliver(d) = ev {
                if let Some(msg) = open_delivery(ctx.world, self.me, &d) {
                    self.log.push(msg.kind());
                    if matches!(msg, Message::PeerTimeRequest { .. }) {
                        send_message(
                            ctx,
                            self.me,
                            d.src,
                            &Message::PeerTimeResponse { nonce: 1, timestamp_ns: 42 },
                        );
                    }
                } else {
                    self.log.push("garbage");
                }
            }
        }
    }

    struct Requester {
        me: Addr,
        peer: Addr,
        got_response: bool,
    }

    impl Actor<World, SysEvent> for Requester {
        fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
            // Delay the first send past start so actor registration exists.
            ctx.schedule_in(SimDuration::from_millis(1), SysEvent::timer(0));
        }
        fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
            match ev {
                SysEvent::Timer { .. } => {
                    send_message(ctx, self.me, self.peer, &Message::PeerTimeRequest { nonce: 1 });
                }
                SysEvent::Deliver(d) => {
                    if let Some(Message::PeerTimeResponse { timestamp_ns, .. }) =
                        open_delivery(ctx.world, self.me, &d)
                    {
                        assert_eq!(timestamp_ns, 42);
                        self.got_response = true;
                    }
                }
                _ => {}
            }
        }
    }

    #[test]
    fn request_response_round_trip_over_sealed_fabric() {
        let net = Network::new(DelayModel::Constant(SimDuration::from_micros(200)), 0.0);
        let mut world = World::new(net, vec![Host::paper_default(), Host::paper_default()]);
        world.provision_all_keys(1);
        let mut s = Simulation::new(world, 1);
        let a1 =
            s.add_actor(Box::new(Requester { me: Addr(1), peer: Addr(2), got_response: false }));
        let a2 = s.add_actor(Box::new(Responder { me: Addr(2), log: vec![] }));
        s.world_mut().register_actor(Addr(1), a1);
        s.world_mut().register_actor(Addr(2), a2);
        s.run_until(SimTime::from_secs(1));
        // Round trip = 1 ms initial delay + 2 × 200 µs.
        assert_eq!(s.now(), SimTime::from_secs(1));
        assert!(s.dispatched() >= 3);
    }

    #[test]
    fn tampered_payload_is_ignored() {
        // Interceptors cannot rewrite payloads (read-only), so model the
        // strongest forgery: an attacker-injected datagram of chosen bytes.
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let mut world = World::new(net, vec![Host::paper_default()]);
        world.provision_all_keys(2);
        let forged = Delivery {
            src: Addr(0),
            dst: Addr(1),
            payload: vec![0u8; 64],
            send_time: SimTime::ZERO,
        };
        assert!(open_delivery(&mut world, Addr(1), &forged).is_none());
    }
}
