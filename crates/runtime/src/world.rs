//! The shared simulation world: hosts, network, keys, clock blackboard,
//! measurement recorder.

use netsim::{Addr, FastMap, Network};
use sim::{ActorId, SimTime};
use trace::Recorder;
use tsc::{CoreFrequency, IncModel, TscClock};

use crate::keys::KeyTable;

pub use proto::{ClockState, Lie};

/// Reusable buffers for the messaging hot path, owned by the world so the
/// steady state of encode → seal → dispatch → open never allocates.
#[derive(Debug, Default)]
pub(crate) struct Scratch {
    /// Encoded plaintext of the message being sealed or opened.
    pub plain: Vec<u8>,
    /// Sealed wire bytes of the message being sent.
    pub wire: Vec<u8>,
    /// Deliveries staged by the fabric for the message being sent.
    pub deliveries: Vec<(SimTime, netsim::Delivery)>,
    /// Plaintext ranges of the batch being sealed (one per message).
    pub parts: Vec<std::ops::Range<usize>>,
    /// Wire-frame ranges of the batch just sealed (one per message).
    pub frames: Vec<std::ops::Range<usize>>,
}

/// One node's physical platform: its TSC, its monitoring core's frequency,
/// and the INC-counting behaviour on that core.
#[derive(Debug, Clone)]
pub struct Host {
    /// The (manipulable) TimeStamp Counter.
    pub tsc: TscClock,
    /// The monitoring core's frequency model.
    pub core: CoreFrequency,
    /// The INC-counter model on that core.
    pub inc: IncModel,
}

impl Host {
    /// The paper's platform: 2899.999 MHz TSC, performance governor at
    /// 3500 MHz, default INC model.
    pub fn paper_default() -> Self {
        Host {
            tsc: TscClock::paper_default(),
            core: CoreFrequency::paper_default(),
            inc: IncModel::default(),
        }
    }
}

/// The shared environment of one simulation run.
#[derive(Debug)]
pub struct World {
    /// The datagram fabric (with any attacker interceptors installed).
    pub net: Network,
    /// Per-node platforms; index `i` belongs to the node at `Addr(i + 1)`.
    pub hosts: Vec<Host>,
    /// Per-node published clock parameters (same indexing as `hosts`).
    pub clocks: Vec<ClockState>,
    /// All measurements of the run.
    pub recorder: Recorder,
    /// Pairwise AEAD sessions.
    pub keys: KeyTable,
    /// Whether the Time Authority is up. Fault drivers clear this during
    /// TA-outage windows; the authority actor drops all traffic (and
    /// pending held responses) while it is `false`.
    pub ta_online: bool,
    /// Per-node active lying-node fault (same indexing as `hosts`).
    /// `None` everywhere unless a fault plan injects a [`Lie`].
    pub lies: Vec<Option<Lie>>,
    actors: FastMap<Addr, ActorId>,
    /// Messaging hot-path scratch buffers (see [`Scratch`]).
    pub(crate) scratch: Scratch,
}

impl World {
    /// Creates a world for `hosts.len()` nodes over `net`.
    pub fn new(net: Network, hosts: Vec<Host>) -> Self {
        let n = hosts.len();
        World {
            net,
            hosts,
            clocks: vec![ClockState::default(); n],
            recorder: Recorder::for_nodes(n),
            keys: KeyTable::new(),
            ta_online: true,
            lies: vec![None; n],
            actors: FastMap::default(),
            scratch: Scratch::default(),
        }
    }

    /// Number of Triad nodes.
    pub fn node_count(&self) -> usize {
        self.hosts.len()
    }

    /// The network address of node index `i` (0-based index, 1-based addr).
    pub fn node_addr(i: usize) -> Addr {
        Addr(u16::try_from(i + 1).expect("node count fits u16"))
    }

    /// The Time Authority's address.
    pub const TA_ADDR: Addr = Addr(0);

    /// Host of the node at `addr`, or `None` for the TA address, client
    /// addresses, and anything past the cluster.
    pub fn try_host(&self, addr: Addr) -> Option<&Host> {
        let index = (addr.0 as usize).checked_sub(1)?;
        self.hosts.get(index)
    }

    /// Mutable counterpart of [`World::try_host`].
    pub fn try_host_mut(&mut self, addr: Addr) -> Option<&mut Host> {
        let index = (addr.0 as usize).checked_sub(1)?;
        self.hosts.get_mut(index)
    }

    /// Host of the node at `addr`.
    ///
    /// # Panics
    ///
    /// Panics for the TA address or unknown nodes; use [`World::try_host`]
    /// for fallible access.
    pub fn host(&self, addr: Addr) -> &Host {
        assert!(addr.0 >= 1, "the TA has no enclave host");
        let n = self.node_count();
        self.try_host(addr).unwrap_or_else(|| {
            panic!("no host for {addr}: cluster has {n} node(s) (Addr(1)..=Addr({n}))")
        })
    }

    /// Mutable host access (TSC manipulation by the attacker).
    ///
    /// # Panics
    ///
    /// Panics for the TA address or unknown nodes; use
    /// [`World::try_host_mut`] for fallible access.
    pub fn host_mut(&mut self, addr: Addr) -> &mut Host {
        assert!(addr.0 >= 1, "the TA has no enclave host");
        let n = self.node_count();
        self.try_host_mut(addr).unwrap_or_else(|| {
            panic!("no host for {addr}: cluster has {n} node(s) (Addr(1)..=Addr({n}))")
        })
    }

    /// Reads the TSC of the node at `addr` at instant `now`.
    pub fn read_tsc(&self, addr: Addr, now: SimTime) -> u64 {
        self.host(addr).tsc.read(now)
    }

    /// Binds a network address to the actor that owns it.
    pub fn register_actor(&mut self, addr: Addr, actor: ActorId) {
        let prev = self.actors.insert(addr, actor);
        assert!(prev.is_none(), "{addr} registered twice");
    }

    /// The actor owning `addr`.
    ///
    /// # Panics
    ///
    /// Panics for unregistered addresses.
    pub fn actor_of(&self, addr: Addr) -> ActorId {
        *self.actors.get(&addr).unwrap_or_else(|| panic!("no actor registered for {addr}"))
    }

    /// Provisions pairwise keys: every node with the TA, and every node
    /// pair, derived deterministically from `seed`.
    pub fn provision_all_keys(&mut self, seed: u64) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed ^ 0x6b65_7973); // "keys"
        let n = self.node_count();
        let mut endpoints = vec![Self::TA_ADDR];
        endpoints.extend((0..n).map(Self::node_addr));
        for i in 0..endpoints.len() {
            for j in (i + 1)..endpoints.len() {
                let mut key = [0u8; 32];
                rng.fill(&mut key);
                self.keys.provision_pair(endpoints[i], endpoints[j], key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::DelayModel;
    use sim::SimDuration;

    fn world(n: usize) -> World {
        World::new(
            Network::new(DelayModel::Constant(SimDuration::from_micros(100)), 0.0),
            (0..n).map(|_| Host::paper_default()).collect(),
        )
    }

    #[test]
    fn addressing_conventions() {
        assert_eq!(World::node_addr(0), Addr(1));
        assert_eq!(World::node_addr(2), Addr(3));
        assert_eq!(World::TA_ADDR, Addr(0));
        let w = world(3);
        assert_eq!(w.node_count(), 3);
    }

    #[test]
    fn clock_state_before_and_after_calibration() {
        let c = ClockState::default();
        assert_eq!(c.now_ns(123), None);
        let c = ClockState {
            valid: true,
            anchor_ref_ns: 1e9,
            anchor_ticks: 2_900_000_000,
            f_calib_hz: 2.9e9,
            uncertainty_ns: 0.0,
        };
        // One second of ticks past the anchor → exactly one more second.
        let ns = c.now_ns(2 * 2_900_000_000).unwrap();
        assert!((ns - 2e9).abs() < 1.0);
        // Ticks *before* the anchor also evaluate (negative progress).
        let ns = c.now_ns(0).unwrap();
        assert!((ns - 0.0).abs() < 1.0);
    }

    #[test]
    fn lies_default_honest_and_skew_alternates() {
        let w = world(3);
        assert!(w.lies.iter().all(Option::is_none));
        let skew = Lie { offset_ns: 250, equivocate: false };
        assert_eq!(skew.skew_ns(0), 250);
        assert_eq!(skew.skew_ns(1), 250);
        let equiv = Lie { offset_ns: 250, equivocate: true };
        assert_eq!(equiv.skew_ns(0), 250);
        assert_eq!(equiv.skew_ns(1), -250);
        assert_eq!(equiv.skew_ns(2), 250);
    }

    #[test]
    fn tsc_access_via_addresses() {
        let w = world(2);
        let t = SimTime::from_secs(1);
        let ticks = w.read_tsc(Addr(1), t);
        assert!((ticks as f64 - 2.899999e9).abs() < 2.0);
    }

    #[test]
    #[should_panic(expected = "no enclave host")]
    fn ta_has_no_host() {
        let w = world(1);
        let _ = w.host(Addr(0));
    }

    #[test]
    #[should_panic(expected = "no host for addr5: cluster has 2 node(s)")]
    fn out_of_range_host_names_the_bounds() {
        let w = world(2);
        let _ = w.host(Addr(5));
    }

    #[test]
    fn try_host_is_total() {
        let mut w = world(2);
        assert!(w.try_host(Addr(0)).is_none());
        assert!(w.try_host(Addr(1)).is_some());
        assert!(w.try_host(Addr(2)).is_some());
        assert!(w.try_host(Addr(3)).is_none());
        assert!(w.try_host_mut(Addr(0)).is_none());
        assert!(w.try_host_mut(Addr(2)).is_some());
        assert!(w.try_host_mut(Addr(9)).is_none());
    }

    #[test]
    fn actor_registration() {
        let mut w = world(1);
        // ActorIds cannot be fabricated outside `sim`; drive a tiny sim to
        // obtain real ones.
        let mut s: sim::Simulation<(), ()> = sim::Simulation::new((), 0);
        struct Noop;
        impl sim::Actor<(), ()> for Noop {
            fn on_event(&mut self, _: &mut sim::Ctx<'_, (), ()>, _: ()) {}
        }
        let id = s.add_actor(Box::new(Noop));
        w.register_actor(Addr(1), id);
        assert_eq!(w.actor_of(Addr(1)), id);
    }

    #[test]
    fn key_provisioning_covers_all_pairs() {
        let mut w = world(3);
        w.provision_all_keys(42);
        for i in 0..3 {
            let a = World::node_addr(i);
            assert!(w.keys.has_session(a, World::TA_ADDR));
            assert!(w.keys.has_session(World::TA_ADDR, a));
            for j in 0..3 {
                if i != j {
                    assert!(w.keys.has_session(a, World::node_addr(j)));
                }
            }
        }
    }
}
