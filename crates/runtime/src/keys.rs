//! Symmetric key provisioning between protocol participants.
//!
//! Real Triad would establish these keys via remote attestation; the
//! simulation provisions them out of band (deterministically from the
//! scenario seed). What matters for the reproduction is the consequence:
//! the on-path attacker sees only AEAD-sealed bytes.

use netsim::{Addr, FastMap};
use tt_crypto::{AuthError, SealingKey};

/// Returns the direction byte endpoint `a` uses on the `(a, b)` pair key.
fn direction_of(a: Addr, b: Addr) -> u8 {
    u8::from(a.0 > b.0)
}

/// Authenticated-data binding a sealed payload to its link, preventing an
/// attacker from re-injecting a message between different endpoints.
pub fn link_aad(src: Addr, dst: Addr) -> [u8; 4] {
    let s = src.0.to_be_bytes();
    let d = dst.0.to_be_bytes();
    [s[0], s[1], d[0], d[1]]
}

/// All pairwise AEAD sessions of one deployment.
#[derive(Debug, Default)]
pub struct KeyTable {
    /// Keyed by `(local, remote)`; the hot path looks a session up per
    /// seal and per open, so this uses the fabric's fast small-key map.
    sessions: FastMap<(Addr, Addr), SealingKey>,
}

impl KeyTable {
    /// Creates an empty table.
    pub fn new() -> Self {
        KeyTable::default()
    }

    /// Installs a fresh pair key between `a` and `b` (both directions).
    ///
    /// # Panics
    ///
    /// Panics if `a == b`.
    pub fn provision_pair(&mut self, a: Addr, b: Addr, key: [u8; 32]) {
        assert_ne!(a, b, "an endpoint does not share a key with itself");
        // One key setup for both directions: the AES round keys and
        // GHASH tables/powers live behind a shared `Arc`, halving both
        // provisioning work and per-deployment key-schedule memory.
        let (d0, d1) = SealingKey::pair(&key);
        let (ab, ba) = if direction_of(a, b) == 0 { (d0, d1) } else { (d1, d0) };
        self.sessions.insert((a, b), ab);
        self.sessions.insert((b, a), ba);
    }

    /// True when `src` can seal to `dst`.
    pub fn has_session(&self, src: Addr, dst: Addr) -> bool {
        self.sessions.contains_key(&(src, dst))
    }

    /// Seals `plaintext` from `src` to `dst` with the link-bound AAD.
    ///
    /// # Panics
    ///
    /// Panics if the pair was never provisioned.
    pub fn seal(&mut self, src: Addr, dst: Addr, plaintext: &[u8]) -> Vec<u8> {
        let mut wire = Vec::new();
        self.seal_into(src, dst, plaintext, &mut wire);
        wire
    }

    /// Allocation-free [`KeyTable::seal`]: appends the wire message to
    /// `out` (a reused scratch buffer on the hot path — clear it first).
    ///
    /// # Panics
    ///
    /// Panics if the pair was never provisioned.
    pub fn seal_into(&mut self, src: Addr, dst: Addr, plaintext: &[u8], out: &mut Vec<u8>) {
        let session = self
            .sessions
            .get_mut(&(src, dst))
            .unwrap_or_else(|| panic!("no key provisioned for {src} -> {dst}"));
        session.seal_into(&link_aad(src, dst), plaintext, out);
    }

    /// Seals a whole batch of plaintexts from `src` to `dst` in one
    /// AEAD pass (see [`tt_crypto::SealingKey::seal_batch_into`]): one
    /// wire frame per `parts` range is appended to `out`, with each
    /// frame's byte range pushed into `frames`. Bytes are identical to
    /// calling [`KeyTable::seal_into`] once per part.
    ///
    /// # Panics
    ///
    /// Panics if the pair was never provisioned.
    pub fn seal_batch_into(
        &mut self,
        src: Addr,
        dst: Addr,
        plain: &[u8],
        parts: &[std::ops::Range<usize>],
        out: &mut Vec<u8>,
        frames: &mut Vec<std::ops::Range<usize>>,
    ) {
        let session = self
            .sessions
            .get_mut(&(src, dst))
            .unwrap_or_else(|| panic!("no key provisioned for {src} -> {dst}"));
        session.seal_batch_into(&link_aad(src, dst), plain, parts, out, frames);
    }

    /// Opens a whole batch of wire frames received by `me` from `from`
    /// in one AEAD pass — the receiving twin of
    /// [`KeyTable::seal_batch_into`].
    ///
    /// # Errors
    ///
    /// All-or-nothing: fails without appending anything when the pair
    /// has no key or any frame fails to authenticate.
    pub fn open_batch_into(
        &mut self,
        me: Addr,
        from: Addr,
        wire: &[u8],
        frames: &[std::ops::Range<usize>],
        out: &mut Vec<u8>,
        parts: &mut Vec<std::ops::Range<usize>>,
    ) -> Result<(), AuthError> {
        let session = self.sessions.get_mut(&(me, from)).ok_or(AuthError)?;
        session.open_batch_into(&link_aad(from, me), wire, frames, out, parts)
    }

    /// Opens a sealed payload received by `me` from `from`.
    ///
    /// # Errors
    ///
    /// Fails when the pair has no key or authentication fails.
    pub fn open(&self, me: Addr, from: Addr, wire: &[u8]) -> Result<Vec<u8>, AuthError> {
        let mut out = Vec::new();
        self.open_into(me, from, wire, &mut out)?;
        Ok(out)
    }

    /// Allocation-free [`KeyTable::open`]: appends the plaintext to `out`,
    /// leaving it untouched on failure.
    ///
    /// # Errors
    ///
    /// Fails when the pair has no key or authentication fails.
    pub fn open_into(
        &self,
        me: Addr,
        from: Addr,
        wire: &[u8],
        out: &mut Vec<u8>,
    ) -> Result<(), AuthError> {
        let session = self.sessions.get(&(me, from)).ok_or(AuthError)?;
        session.open_into(&link_aad(from, me), wire, out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provisioned_pair_round_trips() {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(0), [7u8; 32]);
        assert!(table.has_session(Addr(1), Addr(0)));
        assert!(table.has_session(Addr(0), Addr(1)));
        assert!(!table.has_session(Addr(1), Addr(2)));
        let wire = table.seal(Addr(1), Addr(0), b"request");
        assert_eq!(table.open(Addr(0), Addr(1), &wire).unwrap(), b"request");
    }

    #[test]
    fn cross_link_replay_is_rejected() {
        let mut table = KeyTable::new();
        // Same key material on two pairs: AAD still separates the links.
        table.provision_pair(Addr(1), Addr(0), [7u8; 32]);
        table.provision_pair(Addr(2), Addr(0), [7u8; 32]);
        let wire = table.seal(Addr(1), Addr(0), b"for TA from 1");
        // Replaying node 1's message as if from node 2 fails.
        assert!(table.open(Addr(0), Addr(2), &wire).is_err());
    }

    #[test]
    fn reflection_is_rejected() {
        let mut table = KeyTable::new();
        table.provision_pair(Addr(1), Addr(0), [9u8; 32]);
        let wire = table.seal(Addr(1), Addr(0), b"echo?");
        // The sender cannot be fooled into accepting its own message.
        assert!(table.open(Addr(1), Addr(0), &wire).is_err());
    }

    #[test]
    fn unknown_pair_fails_to_open() {
        let table = KeyTable::new();
        assert!(table.open(Addr(0), Addr(1), b"junk").is_err());
    }

    #[test]
    #[should_panic(expected = "does not share a key with itself")]
    fn self_pair_rejected() {
        KeyTable::new().provision_pair(Addr(1), Addr(1), [0u8; 32]);
    }
}
