//! Published clock parameters and the lying-node fault description —
//! shared vocabulary between protocol machines and both drivers.

/// A node's published clock parameters — enough for anyone holding the TSC
/// value to evaluate the node's current timestamp.
///
/// Node machines publish this through [`crate::Env::publish_clock`]
/// whenever they re-anchor; the drift sampler and serving front-ends read
/// it back without poking the machine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClockState {
    /// Whether the node has completed its first calibration.
    pub valid: bool,
    /// Node's reference timestamp (ns) at the anchor instant.
    pub anchor_ref_ns: f64,
    /// TSC value at the anchor instant.
    pub anchor_ticks: u64,
    /// Calibrated TSC frequency `F^calib` (ticks per second).
    pub f_calib_hz: f64,
    /// Self-assessed error half-width (ns) at the anchor instant.
    ///
    /// Hardened (§V) nodes publish their interval bound here so the serving
    /// layer can attest intervals the quorum reader can cross-check; base
    /// Triad nodes publish 0 ("no self-assessment") and the serving layer
    /// falls back to its configured floor.
    pub uncertainty_ns: f64,
}

impl Default for ClockState {
    fn default() -> Self {
        ClockState {
            valid: false,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: 1.0,
            uncertainty_ns: 0.0,
        }
    }
}

impl ClockState {
    /// The node's timestamp (ns) when its TSC reads `ticks_now`, or `None`
    /// before first calibration.
    pub fn now_ns(&self, ticks_now: u64) -> Option<f64> {
        if !self.valid {
            return None;
        }
        let dticks = ticks_now as f64 - self.anchor_ticks as f64;
        Some(self.anchor_ref_ns + dticks / self.f_calib_hz * 1e9)
    }
}

/// An active lying-node fault: the node's serving front-end misreports
/// timestamps by a planned offset while its protocol stack runs honestly.
///
/// This models a compromised serving path (the paper's single-node-trust
/// failure): calibration, peer untainting and the published clock are all
/// correct, but everything the node *tells clients* is skewed. Installed
/// and cleared by the fault driver; `None` means the node is honest.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Lie {
    /// Planned skew applied to served/attested timestamps (ns, signed).
    pub offset_ns: i64,
    /// When true the node equivocates: successive answers alternate
    /// between `+offset_ns` and `-offset_ns` instead of skewing steadily,
    /// so different clients observe mutually inconsistent clocks.
    pub equivocate: bool,
}

impl Lie {
    /// The skew for the `seq`-th answer this node has served while lying.
    pub fn skew_ns(&self, seq: u64) -> i64 {
        if self.equivocate && seq % 2 == 1 {
            -self.offset_ns
        } else {
            self.offset_ns
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_state_before_and_after_calibration() {
        let c = ClockState::default();
        assert_eq!(c.now_ns(123), None);
        let c = ClockState {
            valid: true,
            anchor_ref_ns: 1e9,
            anchor_ticks: 2_900_000_000,
            f_calib_hz: 2.9e9,
            uncertainty_ns: 0.0,
        };
        // One second of ticks past the anchor → exactly one more second.
        let ns = c.now_ns(2 * 2_900_000_000).unwrap();
        assert!((ns - 2e9).abs() < 1.0);
        // Ticks *before* the anchor also evaluate (negative progress).
        let ns = c.now_ns(0).unwrap();
        assert!((ns - 0.0).abs() < 1.0);
    }

    #[test]
    fn lie_skew_alternates_only_when_equivocating() {
        let skew = Lie { offset_ns: 250, equivocate: false };
        assert_eq!(skew.skew_ns(0), 250);
        assert_eq!(skew.skew_ns(1), 250);
        let equiv = Lie { offset_ns: 250, equivocate: true };
        assert_eq!(equiv.skew_ns(0), 250);
        assert_eq!(equiv.skew_ns(1), -250);
        assert_eq!(equiv.skew_ns(2), 250);
    }
}
