//! Bounded retry with exponential backoff, and a circuit breaker for a
//! repeatedly unreachable Time Authority.
//!
//! The base protocol retransmits a lost calibration probe after a fixed
//! timeout, forever. Under a TA outage or a long partition that turns every
//! node into a synchronized retry hammer: all nodes probe in lock-step at
//! the same cadence and the TA takes the full thundering herd the instant
//! it heals. The hardened retry policy spaces retransmissions out
//! exponentially (with deterministic, seeded jitter to decorrelate nodes)
//! and the circuit breaker stops probing entirely for a cooldown once the
//! TA has been unreachable for a configured number of consecutive
//! attempts.
//!
//! The default [`RetryPolicy`] reproduces the legacy behaviour exactly —
//! constant delay, no jitter, unlimited attempts, and crucially **zero RNG
//! draws** — so existing seeded experiments replay bit-identically unless
//! a config opts into the hardened policy.

use rand::rngs::StdRng;
use rand::Rng;
use sim::SimDuration;

/// How calibration-probe retransmissions are spaced and bounded.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Multiplier applied to the base timeout per attempt
    /// (`delay = base · factor^attempt`). `1.0` = constant delay.
    pub factor: f64,
    /// Cap on the computed backoff delay (before jitter); `None` leaves it
    /// unbounded.
    pub max_backoff: Option<SimDuration>,
    /// Relative jitter: the delay is scaled by a uniform draw from
    /// `[1 − jitter_frac, 1 + jitter_frac]`. `0.0` draws nothing from the
    /// RNG (bit-compatible with the legacy fixed schedule).
    pub jitter_frac: f64,
    /// Attempts per burst before the probe is declared failed and handed
    /// to the circuit breaker (or restarted). `None` = unlimited.
    pub max_attempts: Option<u32>,
}

impl Default for RetryPolicy {
    /// The legacy schedule: constant delay, no jitter, unlimited retries.
    fn default() -> Self {
        RetryPolicy { factor: 1.0, max_backoff: None, jitter_frac: 0.0, max_attempts: None }
    }
}

impl RetryPolicy {
    /// The hardened schedule: doubling backoff capped at 8 s, ±10 % seeded
    /// jitter, at most 6 attempts per burst.
    pub fn hardened() -> Self {
        RetryPolicy {
            factor: 2.0,
            max_backoff: Some(SimDuration::from_secs(8)),
            jitter_frac: 0.1,
            max_attempts: Some(6),
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a sub-unity factor, jitter outside `[0, 1)`, or a
    /// zero-attempt bound.
    pub fn validate(&self) {
        assert!(self.factor >= 1.0, "backoff factor must not shrink the delay");
        assert!((0.0..1.0).contains(&self.jitter_frac), "jitter fraction must lie in [0, 1)");
        if let Some(n) = self.max_attempts {
            assert!(n > 0, "at least one attempt per burst is required");
        }
    }

    /// True when a burst has exhausted its attempt budget.
    pub fn exhausted(&self, attempt: u32) -> bool {
        self.max_attempts.is_some_and(|n| attempt >= n)
    }

    /// The delay before retry number `attempt` (0-based: attempt 0 is the
    /// wait after the *initial* transmission). Draws from `rng` only when
    /// `jitter_frac > 0`.
    pub fn backoff(&self, base: SimDuration, attempt: u32, rng: &mut StdRng) -> SimDuration {
        let mut delay_ns = base.as_nanos() as f64 * self.factor.powi(attempt.min(63) as i32);
        if let Some(cap) = self.max_backoff {
            delay_ns = delay_ns.min(cap.as_nanos() as f64);
        }
        if self.jitter_frac > 0.0 {
            delay_ns *= 1.0 + rng.gen_range(-self.jitter_frac..=self.jitter_frac);
        }
        SimDuration::from_nanos(delay_ns.max(1.0) as u64)
    }
}

/// Opens after `failure_threshold` consecutive probe failures; while open
/// the node sends no TA traffic at all, then retries once per `cooldown`
/// (half-open) until an answer arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CircuitBreakerPolicy {
    /// Consecutive failed probes (timeouts) that trip the breaker.
    pub failure_threshold: u32,
    /// Silence period before the next half-open trial probe.
    pub cooldown: SimDuration,
}

impl CircuitBreakerPolicy {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on a zero threshold or zero cooldown.
    pub fn validate(&self) {
        assert!(self.failure_threshold > 0, "breaker threshold must be positive");
        assert!(!self.cooldown.is_zero(), "breaker cooldown must be positive");
    }
}

impl Default for CircuitBreakerPolicy {
    fn default() -> Self {
        CircuitBreakerPolicy { failure_threshold: 8, cooldown: SimDuration::from_secs(5) }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn legacy_policy_is_constant_and_draws_nothing() {
        let p = RetryPolicy::default();
        p.validate();
        let base = SimDuration::from_millis(500);
        let mut rng = StdRng::seed_from_u64(1);
        let mut probe = StdRng::seed_from_u64(1);
        for attempt in 0..10 {
            assert_eq!(p.backoff(base, attempt, &mut rng), base);
        }
        // No draws consumed: the two streams still agree.
        use rand::Rng;
        assert_eq!(rng.gen_range(0..u64::MAX), probe.gen_range(0..u64::MAX));
        assert!(!p.exhausted(1_000_000));
    }

    #[test]
    fn hardened_policy_doubles_caps_and_jitters() {
        let p = RetryPolicy::hardened();
        p.validate();
        let base = SimDuration::from_millis(500);
        let mut rng = StdRng::seed_from_u64(7);
        let d0 = p.backoff(base, 0, &mut rng).as_nanos() as f64;
        let d3 = p.backoff(base, 3, &mut rng).as_nanos() as f64;
        let b = base.as_nanos() as f64;
        assert!((d0 - b).abs() <= 0.1 * b, "attempt 0 ≈ base, got {d0}");
        assert!((d3 - 8.0 * b).abs() <= 0.8 * b, "attempt 3 ≈ 8·base, got {d3}");
        // The cap bites long before attempt 30 would overflow anything.
        let d30 = p.backoff(base, 30, &mut rng);
        assert!(d30 <= SimDuration::from_nanos((8e9 * 1.1) as u64));
        assert!(p.exhausted(6) && !p.exhausted(5));
    }

    #[test]
    fn backoff_is_deterministic_per_seed() {
        let p = RetryPolicy::hardened();
        let base = SimDuration::from_millis(100);
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for attempt in 0..8 {
            assert_eq!(p.backoff(base, attempt, &mut a), p.backoff(base, attempt, &mut b));
        }
    }

    #[test]
    #[should_panic(expected = "jitter fraction")]
    fn excessive_jitter_rejected() {
        RetryPolicy { jitter_frac: 1.0, ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "threshold must be positive")]
    fn zero_breaker_threshold_rejected() {
        CircuitBreakerPolicy { failure_threshold: 0, cooldown: SimDuration::from_secs(1) }
            .validate();
    }
}
