//! Bounded nonce deduplication for request/response clients.
//!
//! The fabric can duplicate and reorder datagrams, so clients must
//! remember which nonces are still legitimately outstanding and drop
//! everything else. Remembering *every* nonce ever issued grows without
//! bound over a long serving run; [`NonceWindow`] keeps only the most
//! recent `capacity` outstanding nonces, evicting the oldest — a stale
//! straggler past the window is indistinguishable from a replay and is
//! rightly ignored.

use std::collections::VecDeque;

/// A fixed-capacity window of outstanding nonces with FIFO eviction.
///
/// # Examples
///
/// ```
/// use proto::NonceWindow;
///
/// let mut w = NonceWindow::new(2);
/// w.insert(1);
/// w.insert(2);
/// w.insert(3); // evicts 1
/// assert!(!w.take(1)); // too old: treated as a replay
/// assert!(w.take(3));
/// assert!(!w.take(3)); // second (duplicated) answer is dropped
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct NonceWindow {
    capacity: usize,
    window: VecDeque<u64>,
}

impl NonceWindow {
    /// Creates a window remembering at most `capacity` outstanding nonces.
    ///
    /// # Panics
    ///
    /// Panics when `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "a nonce window needs room for at least one nonce");
        NonceWindow { capacity, window: VecDeque::with_capacity(capacity) }
    }

    /// Marks `nonce` outstanding, evicting the oldest entry when full.
    pub fn insert(&mut self, nonce: u64) {
        if self.window.len() == self.capacity {
            self.window.pop_front();
        }
        self.window.push_back(nonce);
    }

    /// Consumes `nonce` if it is outstanding. Returns `false` for nonces
    /// never issued, already answered (duplicates), or evicted (stale
    /// stragglers) — all of which the caller must ignore.
    pub fn take(&mut self, nonce: u64) -> bool {
        match self.window.iter().position(|&n| n == nonce) {
            Some(i) => {
                self.window.remove(i);
                true
            }
            None => false,
        }
    }

    /// Nonces currently outstanding.
    pub fn len(&self) -> usize {
        self.window.len()
    }

    /// True when nothing is outstanding.
    pub fn is_empty(&self) -> bool {
        self.window.is_empty()
    }

    /// The eviction bound this window was built with.
    pub fn capacity(&self) -> usize {
        self.capacity
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_take_and_duplicates() {
        let mut w = NonceWindow::new(4);
        for n in 1..=4 {
            w.insert(n);
        }
        assert_eq!(w.len(), 4);
        assert!(w.take(2));
        assert!(!w.take(2), "a consumed nonce must not match again");
        assert!(!w.take(99), "never-issued nonces never match");
        assert_eq!(w.len(), 3);
    }

    #[test]
    fn capacity_one_behaves_like_a_single_slot() {
        // The exact semantics ClientWorkload relied on with its old
        // `awaiting: Option<u64>` field.
        let mut w = NonceWindow::new(1);
        w.insert(1);
        w.insert(2); // resend/eviction: only the latest request counts
        assert!(!w.take(1));
        assert!(w.take(2));
        assert!(w.is_empty());
    }

    #[test]
    #[should_panic(expected = "at least one nonce")]
    fn zero_capacity_rejected() {
        let _ = NonceWindow::new(0);
    }

    #[test]
    fn long_run_memory_stays_flat() {
        // Regression: at serving-layer request volumes (millions of nonces
        // per run) the dedup set must not grow with the run length — only
        // with its fixed capacity.
        let mut w = NonceWindow::new(64);
        for nonce in 0..2_000_000u64 {
            w.insert(nonce);
            // Answer roughly half the traffic, leave the rest to age out.
            if nonce % 2 == 0 {
                w.take(nonce);
            }
            assert!(w.len() <= 64);
        }
        assert_eq!(w.capacity(), 64);
        assert!(w.len() <= 64);
        // The backing storage never outgrew the capacity either.
        assert!(w.window.capacity() <= 128, "backing buffer grew: {}", w.window.capacity());
    }
}
