//! # proto — the runtime-agnostic protocol boundary
//!
//! Everything a Triad protocol state machine may do to the outside world
//! is captured here, so the *same* machine types run under two drivers:
//!
//! - the deterministic discrete-event simulation (`runtime::MachineActor`
//!   binds [`Env`] onto the sim world, fabric, and timer wheel), and
//! - the real UDP runtime (`net::LiveEnv` binds it onto sockets, OS
//!   clocks, and a monotonic timer queue).
//!
//! A machine implements [`Machine`]: each step consumes one [`Input`]
//! (an authenticated message, a timer firing, a fault event) plus the
//! narrow [`Env`] capability view, and reacts by *emitting effects* —
//! sends, timer arms/cancels, clock publications, trace records — through
//! the `Env` methods. The [`Effect`] enum names the observable effect
//! vocabulary; [`ScriptedEnv`] records it verbatim for unit tests.
//!
//! ## Why effects stream through `Env` instead of being returned
//!
//! A returned `Vec<Effect>` applied after the step would replay
//! randomness out of order: the simulation draws link delays from the
//! shared seeded stream *at the send call site*, interleaved with the
//! machine's own draws (retry jitter, AEX pauses). Interpreting each
//! effect inline, in emission order, keeps every committed seeded
//! artifact byte-identical across the refactor while still confining the
//! machine to the narrow capability surface.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod env;
mod nonce;
mod retry;
mod scripted;

pub use clock::{ClockState, Lie};
pub use env::{Effect, Env, Input, Machine, AEX_RESUME_TOKEN};
pub use nonce::NonceWindow;
pub use retry::{CircuitBreakerPolicy, RetryPolicy};
pub use scripted::ScriptedEnv;

use netsim::Addr;

/// The Time Authority's well-known address.
pub const TA_ADDR: Addr = Addr(0);

/// The network address of protocol node index `i` (0-based index, 1-based
/// address — `Addr(0)` is the TA).
///
/// # Panics
///
/// Panics when the node count overflows the address space.
pub fn node_addr(i: usize) -> Addr {
    Addr(u16::try_from(i + 1).expect("node count fits u16"))
}
