//! A scripted, recording [`Env`] for driverless machine unit tests.

use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{SimDuration, SimTime};
use trace::{NodeStateTag, Recorder};
use wire::Message;

use crate::clock::{ClockState, Lie};
use crate::env::{Effect, Env};
use netsim::Addr;

/// An [`Env`] that interprets nothing: every effect is appended to
/// [`ScriptedEnv::effects`] and the test script sets the observable world
/// (time, TSC rate, peer clocks/states) directly.
///
/// # Examples
///
/// ```
/// use proto::{Env, ScriptedEnv};
/// use sim::SimDuration;
///
/// let mut env = ScriptedEnv::new(1, 7);
/// env.set_timer(42, SimDuration::from_millis(5));
/// assert_eq!(env.effects.len(), 1);
/// ```
#[derive(Debug)]
pub struct ScriptedEnv {
    /// Current instant; advance it between steps with
    /// [`ScriptedEnv::advance`].
    pub now: SimTime,
    /// Seeded randomness handed to the machine.
    pub rng: StdRng,
    /// Synthetic TSC rate used by [`Env::read_tsc`] (ticks per second of
    /// [`ScriptedEnv::now`]).
    pub tsc_hz: f64,
    /// INC count returned by every [`Env::sample_inc`] call.
    pub inc_per_sample: u64,
    /// Every effect the machine emitted, in order.
    pub effects: Vec<Effect>,
    /// Per-node published clocks (index 0-based); writable by the script.
    pub clocks: Vec<ClockState>,
    /// Per-node protocol states as the script wants them discovered.
    pub states: Vec<Option<NodeStateTag>>,
    /// Per-node lying-node faults.
    pub lies: Vec<Option<Lie>>,
    /// The machine under test's node index (receives
    /// [`Env::publish_clock`] writes); `None` for pure clients.
    pub node_index: Option<usize>,
    /// The run's recorder.
    pub recorder: Recorder,
}

impl ScriptedEnv {
    /// An env over `n` scripted nodes with the given RNG seed.
    pub fn new(n: usize, seed: u64) -> Self {
        ScriptedEnv {
            now: SimTime::ZERO,
            rng: StdRng::seed_from_u64(seed),
            tsc_hz: 2.9e9,
            inc_per_sample: 1_000_000,
            effects: Vec::new(),
            clocks: vec![ClockState::default(); n],
            states: vec![None; n],
            lies: vec![None; n],
            node_index: Some(0),
            recorder: Recorder::for_nodes(n),
        }
    }

    /// Advances the scripted clock.
    pub fn advance(&mut self, by: SimDuration) {
        self.now += by;
    }

    /// Drains and returns the recorded effects.
    pub fn take_effects(&mut self) -> Vec<Effect> {
        std::mem::take(&mut self.effects)
    }

    /// The messages sent to `dst`, in emission order.
    pub fn sent_to(&self, dst: Addr) -> Vec<&Message> {
        self.effects
            .iter()
            .filter_map(|e| match e {
                Effect::Send { dst: d, msg } if *d == dst => Some(msg),
                _ => None,
            })
            .collect()
    }
}

impl Env for ScriptedEnv {
    fn now(&self) -> SimTime {
        self.now
    }

    fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }

    fn send(&mut self, dst: Addr, msg: &Message) -> bool {
        self.effects.push(Effect::Send { dst, msg: msg.clone() });
        true
    }

    fn set_timer(&mut self, token: u64, after: SimDuration) {
        self.effects.push(Effect::SetTimer { token, after });
    }

    fn cancel_timer(&mut self, token: u64) {
        self.effects.push(Effect::CancelTimer { token });
    }

    fn read_tsc(&mut self) -> u64 {
        (self.now.as_nanos() as f64 / 1e9 * self.tsc_hz) as u64
    }

    fn sample_inc(&mut self, _wall: SimDuration) -> u64 {
        self.inc_per_sample
    }

    fn publish_clock(&mut self, clock: ClockState) {
        let i = self.node_index.expect("publishing machines have a node index");
        self.clocks[i] = clock;
        self.effects.push(Effect::PublishClock(clock));
    }

    fn clock(&self, i: usize) -> ClockState {
        self.clocks[i]
    }

    fn node_state(&self, i: usize) -> Option<NodeStateTag> {
        self.states[i]
    }

    fn lie(&self, i: usize) -> Option<Lie> {
        self.lies[i]
    }

    fn recorder(&mut self) -> &mut Recorder {
        &mut self.recorder
    }
}
