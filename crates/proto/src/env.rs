//! The capability boundary between protocol machines and their driver.

use netsim::Addr;
use rand::rngs::StdRng;
use sim::{SimDuration, SimTime};
use trace::{NodeStateTag, Recorder};
use wire::Message;

use crate::clock::{ClockState, Lie};

/// Timer token reserved for the AEX-Notify resume callback.
///
/// Machines arm it like any other timer; drivers translate a firing of
/// this token into [`Input::AexResume`] before the machine's own token
/// dispatch ever sees it, so the value cannot collide with machine-chosen
/// tokens.
pub const AEX_RESUME_TOKEN: u64 = u64::MAX;

/// One step's worth of input to a protocol machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Input {
    /// An authenticated, decoded protocol message. Drivers open the AEAD
    /// seal and drop forgeries before the machine runs.
    Message {
        /// Authenticated sender address.
        src: Addr,
        /// The decoded message.
        msg: Message,
    },
    /// A previously armed timer fired.
    Timer {
        /// The token the machine armed the timer with.
        token: u64,
    },
    /// An Asynchronous Enclave Exit hit the node's monitoring core.
    Aex {
        /// True when the same interrupt hits every node at this instant.
        machine_wide: bool,
    },
    /// The enclave thread resumed after an AEX (AEX-Notify).
    AexResume,
    /// The platform went down; all enclave state is lost.
    Crash,
    /// The platform booted again after a crash.
    Restart,
}

/// The observable effect vocabulary of a protocol machine.
///
/// Live drivers interpret effects inline as the machine emits them
/// through [`Env`]; [`crate::ScriptedEnv`] records them as data so tests
/// can assert on a machine's outward behaviour without any driver.
#[derive(Debug, Clone, PartialEq)]
pub enum Effect {
    /// Seal and transmit a message.
    Send {
        /// Destination address.
        dst: Addr,
        /// The message to seal and send.
        msg: Message,
    },
    /// Arm (or re-arm) the timer identified by `token`.
    SetTimer {
        /// Machine-chosen timer identity.
        token: u64,
        /// Delay from now until the timer fires.
        after: SimDuration,
    },
    /// Disarm the timer identified by `token`, if still pending.
    CancelTimer {
        /// The token the timer was armed with.
        token: u64,
    },
    /// Publish the node's clock parameters to co-located readers.
    PublishClock(ClockState),
}

/// The narrow capability view a protocol machine steps against.
///
/// Implementations must interpret each call **immediately, in emission
/// order** — the determinism contract of the simulation driver (shared
/// seeded RNG) depends on it.
pub trait Env {
    /// The driver's current instant. Under the simulation this is
    /// simulated time; under the live runtime, monotonic nanoseconds
    /// since process start.
    fn now(&self) -> SimTime;

    /// The machine's seeded randomness stream.
    fn rng(&mut self) -> &mut StdRng;

    /// Seals and transmits `msg`. Returns `false` when the transport
    /// dropped the datagram at the source (fabric loss / socket error) —
    /// senders see nothing more, exactly like UDP.
    fn send(&mut self, dst: Addr, msg: &Message) -> bool;

    /// Seals and transmits a whole batch of messages, returning how many
    /// the transport accepted.
    ///
    /// Semantically identical to calling [`Env::send`] once per entry in
    /// order — same wire bytes, same RNG draws, same effect order — which
    /// is exactly what this default does. Drivers with a batching
    /// transport override it to seal each same-destination run of the
    /// batch in one AEAD pass (see the simulation driver), which changes
    /// only how fast the bytes are produced, never the bytes themselves.
    fn send_batch(&mut self, batch: &[(Addr, Message)]) -> usize {
        let mut accepted = 0;
        for (dst, msg) in batch {
            if self.send(*dst, msg) {
                accepted += 1;
            }
        }
        accepted
    }

    /// Arms a timer that will come back as [`Input::Timer`] (or
    /// [`Input::AexResume`] for [`AEX_RESUME_TOKEN`]) after `after`.
    /// Tokens of concurrently armed timers must be distinct if the
    /// machine intends to cancel them individually.
    fn set_timer(&mut self, token: u64, after: SimDuration);

    /// Cancels a pending timer; a no-op when `token` is not armed.
    fn cancel_timer(&mut self, token: u64);

    /// Reads the co-located node's TimeStamp Counter.
    ///
    /// # Panics
    ///
    /// May panic for machines with no co-located node
    /// ([`Machine::node_index`] returns `None`).
    fn read_tsc(&mut self) -> u64;

    /// The monitoring thread's INC count over the uninterrupted wall
    /// window `wall` (the enclave counts for real; the simulation
    /// evaluates its host model, drawing from [`Env::rng`]).
    fn sample_inc(&mut self, wall: SimDuration) -> u64;

    /// Publishes the node's clock parameters for co-located readers (the
    /// drift sampler, serving front-ends).
    fn publish_clock(&mut self, clock: ClockState);

    /// The published clock parameters of node index `i`.
    fn clock(&self, i: usize) -> ClockState;

    /// The protocol state node index `i` is currently in, as discoverable
    /// by co-located infrastructure (`None` before the node first runs).
    fn node_state(&self, i: usize) -> Option<NodeStateTag>;

    /// The active lying-node fault on node index `i`'s serving edge, if
    /// any. Live drivers have no fault injector and return `None`.
    fn lie(&self, i: usize) -> Option<Lie>;

    /// The run's measurement recorder. Both drivers own a
    /// [`trace::Recorder`]; machines write the same traces under either.
    fn recorder(&mut self) -> &mut Recorder;
}

/// A pure, IO-free protocol state machine.
///
/// Drivers own the transport, clocks, and timers; the machine owns the
/// protocol. One `on_input` call per input, effects out through [`Env`].
pub trait Machine {
    /// The machine's own network address (the `src` of its sends).
    fn addr(&self) -> Addr;

    /// The co-located protocol node's index, for machines entitled to
    /// that node's TSC/clock capabilities (`None` for pure clients).
    fn node_index(&self) -> Option<usize> {
        None
    }

    /// True while the platform is down. Drivers deliver nothing but
    /// [`Input::Restart`] to a crashed machine — sealed datagrams are not
    /// even opened, exactly like a dead machine on a real network.
    fn crashed(&self) -> bool {
        false
    }

    /// Runs once when the driver brings the machine up.
    fn on_start(&mut self, env: &mut dyn Env) {
        let _ = env;
    }

    /// Consumes one input, emitting effects through `env`.
    fn on_input(&mut self, env: &mut dyn Env, input: Input);
}
