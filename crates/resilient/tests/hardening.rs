//! E12: the hardened protocol under the paper's attacks, with ablations.

use attacks::{CalibrationDelayAttack, DelayAttackMode};
use harness::ClusterBuilder;
use netsim::Addr;
use resilient::{ResilientConfig, ResilientNode};
use runtime::World;
use sim::SimTime;
use tsc::{IsolatedCore, SwitchAt, TriadLike, PAPER_TSC_HZ};

const NODE3: Addr = Addr(3);

fn resilient_cluster(seed: u64, cfg: ResilientConfig) -> ClusterBuilder {
    ClusterBuilder::new(3, seed).node_factory(Box::new(move |me, peers| {
        Box::new(runtime::MachineActor::new(ResilientNode::new(me, peers, cfg.clone())))
    }))
}

#[test]
fn fault_free_hardened_cluster_beats_base_precision() {
    // The long-window refinement should pull calibration error well below
    // the base protocol's ~100 ppm band (§V: honest nodes "will be able to
    // calibrate high-quality clocks over time").
    let mut s = resilient_cluster(201, ResilientConfig::default()).build();
    s.run_until(SimTime::from_secs(600));
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        assert!(
            trace.calibrations_hz.len() >= 2,
            "node {i} refined at least once: {:?}",
            trace.calibrations_hz
        );
        let f = trace.latest_calibrated_hz().unwrap();
        let ppm = stats::freq_error_ppm(f, PAPER_TSC_HZ).abs();
        assert!(ppm < 20.0, "node {i} refined error {ppm} ppm");
        // Drift at the end of 10 minutes stays tight.
        let (_, drift) = trace.drift_ms.last().unwrap();
        assert!(drift.abs() < 10.0, "node {i} final drift {drift} ms");
    }
}

#[test]
fn f_minus_no_longer_propagates_to_honest_nodes() {
    // Same scenario as the base-protocol propagation test: F– on node 3,
    // honest nodes switching from quiet cores to Triad-like AEXs at 104 s.
    // With chimer filtering the honest nodes must stay near the reference.
    let switch = SimTime::from_secs(104);
    let honest_env = || {
        Box::new(SwitchAt {
            at: switch,
            before: Box::new(IsolatedCore::default()),
            after: Box::new(TriadLike::default()),
        })
    };
    let mut s = resilient_cluster(202, ResilientConfig::default())
        .node_aex(0, honest_env())
        .node_aex(1, honest_env())
        .node_aex(2, Box::new(TriadLike::default()))
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
        )))
        .build();
    s.run_until(SimTime::from_secs(420));
    let w = s.world();

    for i in [0usize, 1] {
        let trace = w.recorder.node(i);
        let (lo, hi) = trace.drift_ms.value_range().unwrap();
        assert!(
            lo > -200.0 && hi < 200.0,
            "honest node {i} must stay bounded, got [{lo}, {hi}] ms"
        );
        // Honest nodes outvoted the attacker's clock at least once.
        assert!(trace.chimer_rejections.count() > 0, "node {i} never flagged a false-chimer");
    }

    // The compromised node itself gets dragged back by majority agreement
    // and TA cross-checks instead of running 113 ms/s forever.
    let (lo3, hi3) = w.recorder.node(2).drift_ms.value_range().unwrap();
    assert!(
        hi3 < 2_000.0,
        "attacked node bounded by deadline + cross-check, got [{lo3}, {hi3}] ms"
    );
}

#[test]
fn ablation_without_chimer_filter_gets_infected_again() {
    // Disable only the majority filter: the cluster follows the fast clock
    // like base Triad, demonstrating which countermeasure does the work.
    let cfg = ResilientConfig {
        enable_chimer_filter: false,
        // Also disable the features that would heal/bound the attacker
        // itself, isolating the propagation mechanism.
        enable_long_window: false,
        enable_deadline: false,
        enable_rtt_filter: false,
        ..Default::default()
    };
    let switch = SimTime::from_secs(104);
    let honest_env = || {
        Box::new(SwitchAt {
            at: switch,
            before: Box::new(IsolatedCore::default()),
            after: Box::new(TriadLike::default()),
        })
    };
    let mut s = resilient_cluster(203, cfg)
        .node_aex(0, honest_env())
        .node_aex(1, honest_env())
        .node_aex(2, Box::new(TriadLike::default()))
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
        )))
        .build();
    s.run_until(SimTime::from_secs(420));
    let w = s.world();
    let (_, final_drift) = w.recorder.node(0).drift_ms.last().unwrap();
    assert!(
        final_drift > 1_000.0,
        "without the filter honest drift explodes again, got {final_drift} ms"
    );
}

#[test]
fn f_plus_victim_heals_itself_through_long_window_refit() {
    // F+ poisons the bootstrap fit to 1.1×; the added 100 ms only hits
    // 1 s-sleep probes, while cross-check samples (0 s) pass untouched, so
    // the long-window fit converges to the true frequency.
    let mut s = resilient_cluster(204, ResilientConfig::default())
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FPlus,
        )))
        .build();
    s.run_until(SimTime::from_secs(600));
    let w = s.world();
    let trace = w.recorder.node(2);
    // Bootstrap was poisoned…
    let (_, f_boot) = trace.calibrations_hz[0];
    assert!((f_boot / PAPER_TSC_HZ - 1.1).abs() < 0.01, "bootstrap {f_boot}");
    // …but the final estimate converged back.
    let f_final = trace.latest_calibrated_hz().unwrap();
    let ppm = stats::freq_error_ppm(f_final, PAPER_TSC_HZ).abs();
    assert!(ppm < 100.0, "healed frequency error {ppm} ppm (f = {f_final})");
    // And the drift stopped growing at −91 ms/s.
    let late_slope =
        trace.drift_ms.slope_per_sec_in(SimTime::from_secs(300), SimTime::from_secs(600)).unwrap();
    assert!(late_slope.abs() < 5.0, "late drift rate {late_slope} ms/s");
}

#[test]
fn deadline_bounds_drift_even_without_any_aex() {
    // The base protocol's F+ victim on an isolated core drifts unbounded
    // (−91 ms/s forever). The hardened node's in-TCB deadline plus TA
    // cross-checks bound it even with zero AEXs — and the long-window
    // refit eventually heals the rate itself.
    let cfg = ResilientConfig {
        enable_chimer_filter: false, // isolate deadline + cross-check
        ..Default::default()
    };
    let mut s = resilient_cluster(205, cfg)
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FPlus,
        )))
        .build();
    s.run_until(SimTime::from_secs(300));
    let w = s.world();
    let trace = w.recorder.node(2);
    assert_eq!(trace.aex_events.count(), 0, "no AEXs in this scenario");
    let (lo, _hi) = trace.drift_ms.value_range().unwrap();
    // Base Triad reached −25 000 ms here; the hardened node stays within
    // ~cross-check-interval × 91 ms/s plus correction slack.
    assert!(lo > -4_000.0, "drift floor {lo} ms");
    assert!(trace.corrections.count() > 0, "cross-checks must have corrected the clock");
    let (_, final_drift) = trace.drift_ms.last().unwrap();
    assert!(final_drift.abs() < 1_000.0, "final drift {final_drift} ms");
}

#[test]
fn gossip_flags_the_attacked_clock_and_triggers_self_checks() {
    // F– on node 3 with everyone running the hardened protocol: honest
    // nodes' consistency rounds exclude node 3 from their true-chimer
    // announcements; node 3 accumulates gossip alerts and self-checks
    // against the TA.
    let mut s = resilient_cluster(206, ResilientConfig::default())
        .all_nodes_aex(|| Box::new(TriadLike::default()))
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
        )))
        .build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    let victim_alerts = w.recorder.node(2).gossip_alerts.count();
    let honest_alerts =
        w.recorder.node(0).gossip_alerts.count() + w.recorder.node(1).gossip_alerts.count();
    assert!(victim_alerts > 5, "victim must be flagged, got {victim_alerts}");
    assert!(
        honest_alerts < victim_alerts / 2,
        "honest nodes rarely flagged: {honest_alerts} vs victim {victim_alerts}"
    );
}

#[test]
fn gossip_is_quiet_in_a_fault_free_cluster() {
    let mut s = resilient_cluster(207, ResilientConfig::default())
        .all_nodes_aex(|| Box::new(TriadLike::default()))
        .build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    let total_alerts: u64 = (0..3).map(|i| w.recorder.node(i).gossip_alerts.count()).sum();
    let total_rounds: u64 = (0..3).map(|i| w.recorder.node(i).deadline_checks.count()).sum();
    assert!(total_rounds > 50, "deadline rounds must run: {total_rounds}");
    assert!(
        (total_alerts as f64) < (total_rounds as f64) * 0.2,
        "fault-free gossip stays quiet: {total_alerts} alerts over {total_rounds} rounds"
    );
}
