//! The hardened node implementing §V's protocol changes.

use std::collections::VecDeque;

use netsim::Addr;
use proto::{ClockState, Env, Input, Machine, AEX_RESUME_TOKEN, TA_ADDR};
use sim::SimDuration;
use stats::{marzullo, Interval, Regression};
use trace::NodeStateTag;
use wire::Message;

use triad_core::Calibrator;

use crate::config::ResilientConfig;

const TOKEN_PEER_TIMEOUT: u64 = 1 << 62;
const TOKEN_PROBE_RETRY: u64 = 1 << 61;
const TOKEN_DEADLINE: u64 = 1 << 60;
const TOKEN_TA_CHECK: u64 = 1 << 59;
const TOKEN_BREAKER: u64 = 1 << 58;
const TOKEN_MASK: u64 = (1 << 58) - 1;

/// What an outstanding TA exchange is for.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum ProbeKind {
    /// Initial frequency calibration sample for sleep index `i`.
    Speed(usize),
    /// (Re-)anchoring the time reference (node is unavailable meanwhile).
    Anchor,
    /// Background consistency check while serving (node stays available).
    CrossCheck,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingProbe {
    nonce: u64,
    kind: ProbeKind,
    send_ticks: u64,
    aex_count_at_send: u64,
    /// 0-based retransmission count within the current burst.
    attempt: u32,
}

impl PendingProbe {
    fn retry_token(&self) -> u64 {
        TOKEN_PROBE_RETRY | self.nonce
    }
}

#[derive(Debug, Clone, PartialEq)]
struct IntervalRound {
    nonce: u64,
    proactive: bool,
    responses: Vec<(Addr, u64, u64)>, // (peer, timestamp_ns, error_bound_ns)
    expected: usize,
}

impl IntervalRound {
    fn timeout_token(&self) -> u64 {
        TOKEN_PEER_TIMEOUT | self.nonce
    }
}

/// A Triad node hardened with the countermeasures of §V.
///
/// Shares the base protocol's shape — calibrate, serve, taint on AEX,
/// refresh via peers or TA — but changes *whom it believes*:
///
/// - peer timestamps carry error bounds and are accepted only when a
///   strict majority of clock intervals mutually intersect (Marzullo's
///   true-chimers), so a single fast clock is outvoted instead of
///   followed;
/// - refresh checks also fire from an in-TCB deadline, not only from
///   attacker-controlled AEXs;
/// - the TSC frequency is continuously refined over a long sample window
///   (NTP-style), erasing a poisoned initial calibration;
/// - TA anchors with implausible round-trips are retried, bounding
///   message-delay offsets.
///
/// Like the base node, it is a pure [`proto::Machine`]: the same type runs
/// under the simulation driver and the live UDP runtime.
#[derive(Debug)]
pub struct ResilientNode {
    me: Addr,
    index: usize,
    peers: Vec<Addr>,
    cfg: ResilientConfig,
    state: NodeStateTag,

    anchor_ref_ns: f64,
    anchor_ticks: u64,
    f_calib_hz: Option<f64>,
    clock_valid: bool,
    last_served_ns: f64,

    calibrator: Calibrator,
    pending_probe: Option<PendingProbe>,
    pending_round: Option<IntervalRound>,
    taint_snapshot_ns: Option<f64>,
    resume_pending: bool,
    aex_count: u64,

    rtt_rejects: u32,
    extra_bound_ns: f64,
    ta_samples: VecDeque<(f64, f64)>, // (recv ticks, estimated reference ns)
    drift_bound_ppm: f64,
    refined: bool,

    epoch: u64,
    gossip_suspicion: u32,

    // Fault tolerance: crash-recovery, retry bookkeeping, degradation.
    crashed: bool,
    timer_epoch: u64,
    probe_failures: u32,
    breaker_open: bool,
    breaker_kind: Option<ProbeKind>,
    degraded_since: Option<sim::SimTime>,

    next_nonce: u64,
}

impl ResilientNode {
    /// Creates a hardened node.
    ///
    /// # Panics
    ///
    /// Panics on the TA address, self-peering, or invalid configuration.
    pub fn new(me: Addr, peers: Vec<Addr>, cfg: ResilientConfig) -> Self {
        assert!(me.0 >= 1, "a node cannot use the TA address");
        assert!(!peers.contains(&me), "a node is not its own peer");
        cfg.validate();
        let calibrator = Calibrator::new(cfg.base.calib_sleeps.clone(), cfg.base.samples_per_sleep);
        let drift_bound = cfg.drift_bound_ppm_initial;
        ResilientNode {
            me,
            index: (me.0 - 1) as usize,
            peers,
            cfg,
            state: NodeStateTag::FullCalib,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: None,
            clock_valid: false,
            last_served_ns: 0.0,
            calibrator,
            pending_probe: None,
            pending_round: None,
            taint_snapshot_ns: None,
            resume_pending: false,
            aex_count: 0,
            rtt_rejects: 0,
            extra_bound_ns: 0.0,
            ta_samples: VecDeque::new(),
            drift_bound_ppm: drift_bound,
            refined: false,
            epoch: 0,
            gossip_suspicion: 0,
            crashed: false,
            timer_epoch: 0,
            probe_failures: 0,
            breaker_open: false,
            breaker_kind: None,
            degraded_since: None,
            next_nonce: 0,
        }
    }

    /// True while the node's platform is down (between `Crash` and
    /// `Restart` fault events).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// True while the TA circuit breaker is open (no TA traffic is sent).
    pub fn breaker_is_open(&self) -> bool {
        self.breaker_open
    }

    /// True once the long-window refinement replaced the bootstrap fit.
    pub fn is_refined(&self) -> bool {
        self.refined
    }

    // ------------------------------------------------------------------
    // Clock
    // ------------------------------------------------------------------

    fn clock_ns(&self, ticks: u64) -> Option<f64> {
        let f = self.f_calib_hz?;
        if !self.clock_valid {
            return None;
        }
        Some(self.anchor_ref_ns + (ticks as f64 - self.anchor_ticks as f64) / f * 1e9)
    }

    fn publish_clock(&self, env: &mut dyn Env) {
        env.publish_clock(ClockState {
            valid: self.clock_valid,
            anchor_ref_ns: self.anchor_ref_ns,
            anchor_ticks: self.anchor_ticks,
            f_calib_hz: self.f_calib_hz.unwrap_or(1.0),
            // Publish the §V self-assessed bound evaluated at the anchor;
            // readers widen it for staleness (ticks since the anchor).
            uncertainty_ns: self.error_bound_ns(self.anchor_ticks),
        });
    }

    fn set_anchor(&mut self, env: &mut dyn Env, ticks: u64, ref_ns: f64) {
        self.anchor_ref_ns = ref_ns;
        self.anchor_ticks = ticks;
        self.clock_valid = true;
        self.publish_clock(env);
    }

    fn serve_ns(&mut self, ticks: u64) -> Option<u64> {
        let now = self.clock_ns(ticks)?;
        let served = if now > self.last_served_ns {
            now
        } else {
            self.last_served_ns + self.cfg.base.epsilon_ns as f64
        };
        self.last_served_ns = served;
        Some(served as u64)
    }

    /// Self-assessed half-width error bound at TSC value `ticks`.
    fn error_bound_ns(&self, ticks: u64) -> f64 {
        let secs_since_anchor = self
            .f_calib_hz
            .map(|f| ((ticks as f64 - self.anchor_ticks as f64) / f).abs())
            .unwrap_or(0.0);
        self.cfg.base_error_bound.as_nanos() as f64
            + self.drift_bound_ppm * 1e-6 * secs_since_anchor * 1e9
            + self.extra_bound_ns
    }

    fn enter_state(&mut self, env: &mut dyn Env, state: NodeStateTag) {
        self.state = state;
        let now = env.now();
        match state {
            NodeStateTag::Ok => self.degraded_since = None,
            _ => {
                if self.degraded_since.is_none() {
                    self.degraded_since = Some(now);
                }
            }
        }
        env.recorder().node_mut(self.index).states.enter(now, state);
    }

    fn fresh_nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce & TOKEN_MASK
    }

    // ------------------------------------------------------------------
    // TA exchanges
    // ------------------------------------------------------------------

    fn abandon_probe(&mut self, env: &mut dyn Env) {
        if let Some(p) = self.pending_probe.take() {
            env.cancel_timer(p.retry_token());
        }
    }

    fn send_probe(&mut self, env: &mut dyn Env, kind: ProbeKind) {
        self.send_probe_attempt(env, kind, 0);
    }

    fn send_probe_attempt(&mut self, env: &mut dyn Env, kind: ProbeKind, attempt: u32) {
        self.abandon_probe(env);
        let nonce = self.fresh_nonce();
        let sleep = match kind {
            ProbeKind::Speed(idx) => self.calibrator.sleep_at(idx),
            _ => SimDuration::ZERO,
        };
        env.send(TA_ADDR, &Message::CalibrationRequest { nonce, sleep_ns: sleep.as_nanos() });
        let backoff =
            self.cfg.base.probe_retry.backoff(self.cfg.base.probe_timeout, attempt, env.rng());
        env.set_timer(TOKEN_PROBE_RETRY | nonce, sleep + backoff);
        self.pending_probe = Some(PendingProbe {
            nonce,
            kind,
            send_ticks: env.read_tsc(),
            aex_count_at_send: self.aex_count,
            attempt,
        });
    }

    /// The retry timer fired with the probe still outstanding: retransmit
    /// under the backoff schedule, or trip the circuit breaker.
    fn on_probe_timeout(&mut self, env: &mut dyn Env, kind: ProbeKind, attempt: u32) {
        self.probe_failures = self.probe_failures.saturating_add(1);
        let now = env.now();
        env.recorder().node_mut(self.index).probe_retries.increment(now);

        if let Some(breaker) = self.cfg.base.ta_breaker {
            if self.probe_failures >= breaker.failure_threshold {
                self.pending_probe = None;
                // An unanswerable background cross-check is simply dropped;
                // the breaker only queues stages the protocol depends on.
                self.breaker_open = true;
                self.breaker_kind = Some(kind);
                env.recorder().node_mut(self.index).breaker_opens.increment(now);
                env.set_timer(TOKEN_BREAKER | (self.timer_epoch & TOKEN_MASK), breaker.cooldown);
                return;
            }
        }
        let next = attempt + 1;
        let next = if self.cfg.base.probe_retry.exhausted(next) { 0 } else { next };
        self.pending_probe = None;
        self.send_probe_attempt(env, kind, next);
    }

    /// Cooldown elapsed: half-open trial probe for the stalled stage.
    fn on_breaker_timer(&mut self, env: &mut dyn Env) {
        if !self.breaker_open {
            return;
        }
        self.breaker_open = false;
        let kind = self.breaker_kind.take().expect("open breaker remembers its probe kind");
        self.send_probe_attempt(env, kind, 0);
    }

    fn send_next_speed_probe(&mut self, env: &mut dyn Env) {
        match self.calibrator.next_probe() {
            Some(idx) => self.send_probe(env, ProbeKind::Speed(idx)),
            None => {
                let fit = self.calibrator.fit().expect("two distinct sleeps configured");
                self.f_calib_hz = Some(fit.slope);
                let now = env.now();
                env.recorder().node_mut(self.index).calibrations_hz.push((now, fit.slope));
                self.send_probe(env, ProbeKind::Anchor);
            }
        }
    }

    fn on_calibration_response(&mut self, env: &mut dyn Env, nonce: u64, ta_time_ns: u64) {
        let Some(probe) = self.pending_probe else { return };
        if probe.nonce != nonce {
            return;
        }
        self.pending_probe = None;
        env.cancel_timer(probe.retry_token());
        self.probe_failures = 0; // the TA is reachable again

        let recv_ticks = env.read_tsc();

        if probe.aex_count_at_send != self.aex_count {
            // Interrupted round-trip: unusable measurement.
            match probe.kind {
                ProbeKind::Speed(idx) => self.send_probe(env, ProbeKind::Speed(idx)),
                ProbeKind::Anchor => self.send_probe(env, ProbeKind::Anchor),
                ProbeKind::CrossCheck => {} // next periodic check will retry
            }
            return;
        }

        match probe.kind {
            ProbeKind::Speed(idx) => {
                self.calibrator.record(idx, recv_ticks.saturating_sub(probe.send_ticks));
                self.send_next_speed_probe(env);
            }
            ProbeKind::Anchor | ProbeKind::CrossCheck => {
                self.accept_ta_sample(env, probe.kind, probe.send_ticks, recv_ticks, ta_time_ns);
            }
        }
    }

    fn accept_ta_sample(
        &mut self,
        env: &mut dyn Env,
        kind: ProbeKind,
        send_ticks: u64,
        recv_ticks: u64,
        ta_time_ns: u64,
    ) {
        let f = self.f_calib_hz.expect("anchor/check follows the speed fit");
        let rtt_ns = recv_ticks.saturating_sub(send_ticks) as f64 / f * 1e9;
        let implausible = rtt_ns > self.cfg.max_rtt.as_nanos() as f64;
        if self.cfg.enable_rtt_filter && implausible && self.rtt_rejects < self.cfg.max_rtt_rejects
        {
            // An on-path attacker is (or congestion is) stretching the
            // exchange: retry rather than anchor to a skewed estimate.
            self.rtt_rejects += 1;
            match kind {
                ProbeKind::Anchor => self.send_probe(env, ProbeKind::Anchor),
                ProbeKind::CrossCheck => self.send_probe(env, ProbeKind::CrossCheck),
                ProbeKind::Speed(_) => unreachable!("speed probes skip the RTT filter"),
            }
            return;
        }
        let forced = self.cfg.enable_rtt_filter && implausible;
        self.rtt_rejects = 0;
        let est_ns = ta_time_ns as f64 + rtt_ns / 2.0;
        let sample_extra_bound = if forced { rtt_ns } else { 0.0 };

        // Feed the long-window (NTP-style) refinement.
        self.ta_samples.push_back((recv_ticks as f64, est_ns));
        while self.ta_samples.len() > self.cfg.ntp_max_samples {
            self.ta_samples.pop_front();
        }
        self.maybe_refit(env);

        let now = env.now();
        match kind {
            ProbeKind::Anchor => {
                self.set_anchor(env, recv_ticks, est_ns);
                self.extra_bound_ns = sample_extra_bound;
                env.recorder().node_mut(self.index).ta_references.increment(now);
                self.taint_snapshot_ns = None;
                self.enter_state(env, NodeStateTag::Ok);
            }
            ProbeKind::CrossCheck => {
                let own = self.clock_ns(recv_ticks).expect("checked only while serving");
                let bound = self.error_bound_ns(recv_ticks) + sample_extra_bound;
                if (est_ns - own).abs() > bound {
                    // The clock fell outside its own confidence interval
                    // against the root of trust: correct it.
                    let target = est_ns.max(self.last_served_ns + self.cfg.base.epsilon_ns as f64);
                    self.set_anchor(env, recv_ticks, target);
                    self.extra_bound_ns = sample_extra_bound;
                    env.recorder().node_mut(self.index).corrections.increment(now);
                    env.recorder().node_mut(self.index).ta_references.increment(now);
                }
            }
            ProbeKind::Speed(_) => unreachable!("handled by caller"),
        }
    }

    /// NTP-style long-window frequency refinement: once TA samples span
    /// the configured window, a robust fit of reference time over TSC
    /// ticks replaces the short-window bootstrap estimate (§V: "calibration
    /// phases with short-duration measurements ... can be replaced by more
    /// mature synchronization protocols like NTPsec").
    fn maybe_refit(&mut self, env: &mut dyn Env) {
        if !self.cfg.enable_long_window || self.ta_samples.len() < 8 {
            return;
        }
        let f = self.f_calib_hz.expect("samples only exist after bootstrap");
        let span_ticks = self.ta_samples.back().expect("non-empty").0
            - self.ta_samples.front().expect("non-empty").0;
        let span_ns = span_ticks / f * 1e9;
        if span_ns < self.cfg.ntp_min_window.as_nanos() as f64 {
            return;
        }
        let reg: Regression = self.ta_samples.iter().copied().collect();
        // Theil–Sen resists the occasional attacker-delayed sample.
        let Some(fit) = reg.theil_sen() else { return };
        if fit.slope <= 0.0 {
            return;
        }
        let f_new = 1e9 / fit.slope; // slope is ns of reference per tick
                                     // Sanity: reject fits wildly off the current estimate (a poisoned
                                     // majority of samples cannot silently take over).
        if (f_new / f - 1.0).abs() > 0.2 {
            return;
        }
        let first_refit = !self.refined;
        let changed_ppm = (f_new / f - 1.0).abs() * 1e6;
        if first_refit || changed_ppm > 1.0 {
            // Re-anchor at the current instant so the slope change does not
            // retroactively move the clock.
            let ticks = env.read_tsc();
            if let Some(own) = self.clock_ns(ticks) {
                self.f_calib_hz = Some(f_new);
                self.set_anchor(env, ticks, own);
            } else {
                self.f_calib_hz = Some(f_new);
            }
            self.drift_bound_ppm = self.cfg.drift_bound_ppm_refined;
            self.refined = true;
            let refit_at = env.now();
            env.recorder().node_mut(self.index).calibrations_hz.push((refit_at, f_new));
        }
    }

    // ------------------------------------------------------------------
    // AEX / taint
    // ------------------------------------------------------------------

    fn on_aex(&mut self, env: &mut dyn Env) {
        self.aex_count += 1;
        let now = env.now();
        env.recorder().node_mut(self.index).aex_events.increment(now);
        match self.state {
            NodeStateTag::FullCalib => {}
            NodeStateTag::Ok => {
                let ticks = env.read_tsc();
                self.taint_snapshot_ns = self.clock_ns(ticks);
                self.enter_state(env, NodeStateTag::Tainted);
                self.schedule_resume(env);
            }
            NodeStateTag::RefCalib => {
                self.abandon_probe(env);
                self.enter_state(env, NodeStateTag::Tainted);
                self.schedule_resume(env);
            }
            NodeStateTag::Tainted => self.schedule_resume(env),
            // Crashed platforms take no interrupts (events are dropped
            // before dispatch); unreachable, but harmless.
            NodeStateTag::Crashed => {}
        }
    }

    fn schedule_resume(&mut self, env: &mut dyn Env) {
        if self.resume_pending {
            return;
        }
        self.resume_pending = true;
        let pause = self.cfg.base.aex_pause.sample(env.rng());
        env.set_timer(AEX_RESUME_TOKEN, pause);
    }

    fn on_resume(&mut self, env: &mut dyn Env) {
        self.resume_pending = false;
        if self.state != NodeStateTag::Tainted {
            return;
        }
        self.start_round(env, false);
    }

    // ------------------------------------------------------------------
    // Interval rounds (peer consistency)
    // ------------------------------------------------------------------

    fn abandon_round(&mut self, env: &mut dyn Env) {
        if let Some(r) = self.pending_round.take() {
            env.cancel_timer(r.timeout_token());
        }
    }

    fn start_round(&mut self, env: &mut dyn Env, proactive: bool) {
        self.abandon_round(env);
        if self.peers.is_empty() {
            if !proactive {
                self.fall_back_to_ta(env);
            }
            return;
        }
        let nonce = self.fresh_nonce();
        for &peer in &self.peers {
            env.send(peer, &Message::IntervalRequest { nonce });
        }
        env.set_timer(TOKEN_PEER_TIMEOUT | nonce, self.cfg.base.peer_timeout);
        self.pending_round = Some(IntervalRound {
            nonce,
            proactive,
            responses: Vec::new(),
            expected: self.peers.len(),
        });
    }

    fn on_interval_response(
        &mut self,
        env: &mut dyn Env,
        from: Addr,
        nonce: u64,
        timestamp_ns: u64,
        error_bound_ns: u64,
        tainted: bool,
    ) {
        let Some(round) = self.pending_round.as_mut() else { return };
        if round.nonce != nonce {
            return;
        }
        if !tainted {
            round.responses.push((from, timestamp_ns, error_bound_ns));
        }
        if round.responses.len() == round.expected {
            let round = self.pending_round.take().expect("present");
            env.cancel_timer(round.timeout_token());
            self.conclude_round(env, round);
        }
    }

    fn on_round_timeout(&mut self, env: &mut dyn Env, nonce: u64) {
        let Some(round) = self.pending_round.as_ref() else { return };
        if round.nonce != nonce {
            return;
        }
        let round = self.pending_round.take().expect("present");
        self.conclude_round(env, round);
    }

    fn conclude_round(&mut self, env: &mut dyn Env, round: IntervalRound) {
        if round.proactive {
            if self.state == NodeStateTag::Ok {
                self.apply_consistency(env, &round.responses, true);
            }
            return;
        }
        if self.state != NodeStateTag::Tainted {
            return;
        }
        if round.responses.is_empty() {
            self.fall_back_to_ta(env);
            return;
        }
        if self.cfg.enable_chimer_filter {
            let resolved = self.apply_consistency(env, &round.responses, false);
            if resolved {
                let now = env.now();
                env.recorder().node_mut(self.index).peer_untaints.increment(now);
                self.taint_snapshot_ns = None;
                self.enter_state(env, NodeStateTag::Ok);
            } else {
                self.fall_back_to_ta(env);
            }
        } else {
            // Base Triad policy (ablation baseline).
            let now = env.now();
            let ticks = env.read_tsc();
            let local = self.taint_snapshot_ns.expect("tainted has a snapshot");
            let best = round.responses.iter().map(|&(_, ts, _)| ts).max().expect("non-empty");
            if (best as f64) > local {
                self.set_anchor(env, ticks, best as f64);
                env.recorder().node_mut(self.index).peer_adoptions.increment(now);
            } else if self.clock_ns(ticks).expect("valid before taint") <= local {
                self.set_anchor(env, ticks, local + self.cfg.base.epsilon_ns as f64);
            }
            env.recorder().node_mut(self.index).peer_untaints.increment(now);
            self.taint_snapshot_ns = None;
            self.enter_state(env, NodeStateTag::Ok);
        }
    }

    /// Runs the Marzullo majority test over peer intervals plus our own
    /// clock. Returns `true` when a majority agreement existed (whether or
    /// not our clock needed correcting).
    fn apply_consistency(
        &mut self,
        env: &mut dyn Env,
        responses: &[(Addr, u64, u64)],
        proactive: bool,
    ) -> bool {
        let now = env.now();
        let ticks = env.read_tsc();
        // A small allowance for the network delay on peer responses.
        let net_margin_ns = self.cfg.base.peer_timeout.as_nanos() as f64;

        let mut intervals: Vec<Interval> = responses
            .iter()
            .map(|&(_, ts, bound)| Interval::around(ts as f64, bound as f64 + net_margin_ns))
            .collect();
        let own_idx = intervals.len();
        let own_now = match self.clock_ns(ticks) {
            Some(v) => v,
            None => return false,
        };
        intervals.push(Interval::around(own_now, self.error_bound_ns(ticks)));

        let Some(agreement) = marzullo(&intervals) else { return false };
        let total = intervals.len();
        if !agreement.is_majority_of(total) {
            return false;
        }
        // Flag the outvoted clocks (false-chimers) — the paper's §V
        // suggestion of publishing true-chimer lists reduces to counting
        // them here.
        let rejected = total - agreement.support;
        for _ in 0..rejected {
            env.recorder().node_mut(self.index).chimer_rejections.increment(now);
        }
        // §V: publish the true-chimer set ("Nodes may publish ... their
        // list of true-chimers"). Peers excluded by all of their peers
        // self-check against the TA.
        if self.cfg.enable_gossip {
            self.epoch += 1;
            let chimer_ids: Vec<wire::NodeId> = agreement
                .chimers
                .iter()
                .map(|&idx| {
                    if idx == own_idx {
                        wire::NodeId(self.me.0)
                    } else {
                        wire::NodeId(responses[idx].0 .0)
                    }
                })
                .collect();
            let announcement =
                Message::ChimerAnnouncement { epoch: self.epoch, chimers: chimer_ids };
            for &peer in &self.peers {
                env.send(peer, &announcement);
            }
        }
        if agreement.chimers.contains(&own_idx) {
            // Our clock is consistent with the majority: keep it.
            return true;
        }
        // Outvoted: correct toward the agreement midpoint, monotonic.
        let target =
            agreement.interval.center().max(self.last_served_ns + self.cfg.base.epsilon_ns as f64);
        self.set_anchor(env, ticks, target);
        env.recorder().node_mut(self.index).corrections.increment(now);
        let _ = proactive;
        true
    }

    fn fall_back_to_ta(&mut self, env: &mut dyn Env) {
        self.enter_state(env, NodeStateTag::RefCalib);
        self.send_probe(env, ProbeKind::Anchor);
    }

    // ------------------------------------------------------------------
    // Crash / recovery (fault injection)
    // ------------------------------------------------------------------

    /// The platform goes down: every piece of enclave state is lost except
    /// the sealed monotonic serving floor (`last_served_ns`).
    fn on_crash(&mut self, env: &mut dyn Env) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.timer_epoch += 1;
        self.abandon_probe(env);
        self.abandon_round(env);
        self.calibrator.reset();
        self.f_calib_hz = None;
        self.clock_valid = false;
        self.taint_snapshot_ns = None;
        self.resume_pending = false;
        self.aex_count = 0;
        self.rtt_rejects = 0;
        self.extra_bound_ns = 0.0;
        self.ta_samples.clear();
        self.drift_bound_ppm = self.cfg.drift_bound_ppm_initial;
        self.refined = false;
        self.gossip_suspicion = 0;
        self.probe_failures = 0;
        self.breaker_open = false;
        self.breaker_kind = None;
        self.publish_clock(env);
        let now = env.now();
        env.recorder().node_mut(self.index).crashes.increment(now);
        self.enter_state(env, NodeStateTag::Crashed);
    }

    /// The platform boots again: full recalibration before serving, fresh
    /// periodic timer chains.
    fn on_restart(&mut self, env: &mut dyn Env) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        self.enter_state(env, NodeStateTag::FullCalib);
        self.send_next_speed_probe(env);
        if self.cfg.enable_deadline {
            env.set_timer(self.epoch_token(TOKEN_DEADLINE), self.cfg.deadline);
        }
        if self.cfg.enable_ta_cross_check {
            env.set_timer(self.epoch_token(TOKEN_TA_CHECK), self.cfg.ta_check_interval);
        }
    }

    fn epoch_token(&self, kind: u64) -> u64 {
        kind | (self.timer_epoch & TOKEN_MASK)
    }

    fn epoch_matches(&self, token: u64) -> bool {
        token & TOKEN_MASK == self.timer_epoch & TOKEN_MASK
    }

    // ------------------------------------------------------------------
    // Graceful degradation (staleness-aware readings)
    // ------------------------------------------------------------------

    /// Serves a degraded-tolerant reading. The uncertainty is the node's
    /// standing self-assessed error bound plus a widening term while
    /// degraded, so clients watch the bound grow under faults and snap
    /// back after recalibration.
    fn serve_reading(&mut self, env: &mut dyn Env) -> Option<wire::TimeReading> {
        let now = env.now();
        let ticks = env.read_tsc();
        let mut uncertainty = self.error_bound_ns(ticks);
        if let Some(t0) = self.degraded_since {
            uncertainty += self.cfg.base.reading_drift_ppm * 1e-6 * (now - t0).as_nanos() as f64;
        }
        let estimate_ns = self.serve_ns(ticks)?;
        let uncertainty_ns = uncertainty as u64;
        env.recorder().node_mut(self.index).reading_uncertainty_ns.push(now, uncertainty_ns as f64);
        Some(wire::TimeReading {
            estimate_ns,
            uncertainty_ns,
            degraded: self.state != NodeStateTag::Ok,
        })
    }

    // ------------------------------------------------------------------
    // Messages
    // ------------------------------------------------------------------

    fn on_message(&mut self, env: &mut dyn Env, from: Addr, msg: Message) {
        match msg {
            Message::CalibrationResponse { nonce, ta_time_ns, .. } if from == TA_ADDR => {
                self.on_calibration_response(env, nonce, ta_time_ns);
            }
            Message::IntervalRequest { nonce } if self.state == NodeStateTag::Ok => {
                let ticks = env.read_tsc();
                let bound = self.error_bound_ns(ticks) as u64;
                if let Some(ts) = self.serve_ns(ticks) {
                    env.send(
                        from,
                        &Message::IntervalResponse {
                            nonce,
                            timestamp_ns: ts,
                            error_bound_ns: bound,
                            tainted: false,
                        },
                    );
                }
            }
            Message::IntervalResponse { nonce, timestamp_ns, error_bound_ns, tainted } => {
                self.on_interval_response(env, from, nonce, timestamp_ns, error_bound_ns, tainted);
            }
            Message::ChimerAnnouncement { chimers, .. } if self.cfg.enable_gossip => {
                let me_id = wire::NodeId(self.me.0);
                if !chimers.contains(&me_id) {
                    let now = env.now();
                    env.recorder().node_mut(self.index).gossip_alerts.increment(now);
                    self.gossip_suspicion += 1;
                    if self.gossip_suspicion as usize >= self.peers.len().max(1) {
                        self.gossip_suspicion = 0;
                        // Every peer thinks our clock is off: verify
                        // against the root of trust right away.
                        if self.state == NodeStateTag::Ok && self.pending_probe.is_none() {
                            self.send_probe(env, ProbeKind::CrossCheck);
                        }
                    }
                } else {
                    self.gossip_suspicion = 0;
                }
            }
            // Base-protocol peers may coexist in mixed clusters.
            Message::PeerTimeRequest { nonce } if self.state == NodeStateTag::Ok => {
                let ticks = env.read_tsc();
                if let Some(ts) = self.serve_ns(ticks) {
                    env.send(from, &Message::PeerTimeResponse { nonce, timestamp_ns: ts });
                }
            }
            Message::ClientTimeRequest { nonce } => {
                let timestamp_ns = if self.state == NodeStateTag::Ok {
                    let ticks = env.read_tsc();
                    self.serve_ns(ticks)
                } else {
                    None
                };
                env.send(from, &Message::ClientTimeResponse { nonce, timestamp_ns });
            }
            Message::TimeReadingRequest { nonce } => {
                let reading = self.serve_reading(env);
                env.send(from, &Message::TimeReadingResponse { nonce, reading });
            }
            _ => {}
        }
    }
}

impl Machine for ResilientNode {
    fn addr(&self) -> Addr {
        self.me
    }

    fn node_index(&self) -> Option<usize> {
        Some(self.index)
    }

    fn crashed(&self) -> bool {
        self.crashed
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        let now = env.now();
        env.recorder().node_mut(self.index).states.enter(now, NodeStateTag::FullCalib);
        self.send_next_speed_probe(env);
        if self.cfg.enable_deadline {
            env.set_timer(TOKEN_DEADLINE, self.cfg.deadline);
        }
        if self.cfg.enable_ta_cross_check {
            env.set_timer(TOKEN_TA_CHECK, self.cfg.ta_check_interval);
        }
    }

    fn on_input(&mut self, env: &mut dyn Env, input: Input) {
        match input {
            Input::Aex { .. } => self.on_aex(env),
            Input::AexResume => self.on_resume(env),
            Input::Crash => self.on_crash(env),
            Input::Restart => self.on_restart(env),
            Input::Message { src, msg } => self.on_message(env, src, msg),
            Input::Timer { token } => {
                if token & TOKEN_DEADLINE != 0 {
                    if !self.epoch_matches(token) {
                        return; // stale chain from before a crash
                    }
                    if self.state == NodeStateTag::Ok && self.pending_round.is_none() {
                        let now = env.now();
                        env.recorder().node_mut(self.index).deadline_checks.increment(now);
                        self.start_round(env, true);
                    }
                    env.set_timer(self.epoch_token(TOKEN_DEADLINE), self.cfg.deadline);
                } else if token & TOKEN_TA_CHECK != 0 {
                    if !self.epoch_matches(token) {
                        return;
                    }
                    if self.state == NodeStateTag::Ok && self.pending_probe.is_none() {
                        self.send_probe(env, ProbeKind::CrossCheck);
                    }
                    env.set_timer(self.epoch_token(TOKEN_TA_CHECK), self.cfg.ta_check_interval);
                } else if token & TOKEN_BREAKER != 0 {
                    if self.epoch_matches(token) {
                        self.on_breaker_timer(env);
                    }
                } else if token & TOKEN_PEER_TIMEOUT != 0 {
                    self.on_round_timeout(env, token & TOKEN_MASK);
                } else if token & TOKEN_PROBE_RETRY != 0 {
                    let nonce = token & TOKEN_MASK;
                    if let Some(probe) = self.pending_probe {
                        if probe.nonce == nonce {
                            self.on_probe_timeout(env, probe.kind, probe.attempt);
                        }
                    }
                }
            }
        }
    }
}
