//! # resilient — the paper's §V hardened trusted-time protocol
//!
//! The Discussion section of the reproduced paper sketches protocol
//! changes to survive the F+/F– attacks that break base Triad; this crate
//! implements them so the extension experiments (E12) can quantify each
//! one:
//!
//! 1. **In-TCB deadlines** — refresh checks fire after a fixed amount of
//!    clock progress, so an attacker who suppresses AEXs can no longer let
//!    a miscalibrated clock run forever;
//! 2. **Long-window (NTP-style) calibration** — TSC frequency is refined
//!    over minutes of TA samples with a robust Theil–Sen fit, erasing a
//!    poisoned short-window bootstrap;
//! 3. **True-chimer filtering** — peers exchange timestamp *intervals*
//!    `t ± e`; a timestamp is only trusted when a strict majority of
//!    intervals (including the node's own) mutually intersect (Marzullo),
//!    so the cluster no longer follows its fastest clock;
//! 4. **RTT filtering** — TA anchors with implausible round-trips are
//!    retried, bounding what message delaying can do to the offset.
//!
//! [`ResilientNode`] is drop-in compatible with the `harness` builder via
//! its node-factory hook; [`ResilientConfig`] exposes one switch per
//! countermeasure for ablations.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod node;

pub use config::ResilientConfig;
pub use node::ResilientNode;
