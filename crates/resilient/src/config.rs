//! Hardened-protocol configuration (§V), with per-feature switches so the
//! ablation experiments can isolate each countermeasure.

use sim::SimDuration;
use triad_core::TriadConfig;

/// Configuration of a [`crate::ResilientNode`].
///
/// Each `enable_*` flag corresponds to one protocol change proposed in the
/// paper's Discussion:
///
/// - **deadline**: an in-TCB trigger — refresh checks fire after a fixed
///   amount of clock progress even without any AEX, removing the
///   attacker's monopoly on refresh events;
/// - **long-window calibration**: NTP-style drift estimation over minutes
///   instead of Triad's ~1 s probes, restoring honest-node precision;
/// - **chimer filter**: peer timestamps are accepted only when a strict
///   majority of clock intervals (`t_i ± e_i`) intersect, à la Marzullo —
///   a lone fast clock is rejected instead of followed;
/// - **RTT filter**: time-reference anchors with implausibly large
///   round-trips are retried, bounding delay-attack offsets.
#[derive(Debug, Clone, PartialEq)]
pub struct ResilientConfig {
    /// Base Triad parameters (probe scheduling, peer timeout, ε, monitor).
    pub base: TriadConfig,
    /// §V change 1: proactive in-TCB deadline checks.
    pub enable_deadline: bool,
    /// §V change 2: NTP-style long-window frequency refinement.
    pub enable_long_window: bool,
    /// §V change 3: Marzullo true-chimer majority filtering.
    pub enable_chimer_filter: bool,
    /// Supporting hardening: reject implausibly slow TA anchors.
    pub enable_rtt_filter: bool,
    /// §V: publish true-chimer lists to peers after each consistency
    /// round; a node excluded by all of its peers immediately cross-checks
    /// against the TA.
    pub enable_gossip: bool,
    /// §V: periodically verify the local clock against the TA ("a node may
    /// now check if its clock is consistent with the TA").
    pub enable_ta_cross_check: bool,
    /// Clock progress between proactive checks.
    pub deadline: SimDuration,
    /// Cadence of TA cross-check exchanges.
    pub ta_check_interval: SimDuration,
    /// Largest acceptable TA round-trip before a sample is retried.
    pub max_rtt: SimDuration,
    /// Consecutive RTT rejections before accepting anyway (liveness),
    /// with the error bound widened by the observed round-trip.
    pub max_rtt_rejects: u32,
    /// Floor of each node's self-assessed error bound.
    pub base_error_bound: SimDuration,
    /// Assumed drift bound before long-window refinement (ppm).
    pub drift_bound_ppm_initial: f64,
    /// Assumed drift bound after refinement (ppm).
    pub drift_bound_ppm_refined: f64,
    /// Minimum sample span before a long-window refit.
    pub ntp_min_window: SimDuration,
    /// Maximum retained TA samples (ring buffer).
    pub ntp_max_samples: usize,
}

impl Default for ResilientConfig {
    fn default() -> Self {
        ResilientConfig {
            base: TriadConfig::default(),
            enable_deadline: true,
            enable_long_window: true,
            enable_chimer_filter: true,
            enable_rtt_filter: true,
            enable_gossip: true,
            enable_ta_cross_check: true,
            deadline: SimDuration::from_secs(2),
            ta_check_interval: SimDuration::from_secs(15),
            max_rtt: SimDuration::from_millis(10),
            max_rtt_rejects: 3,
            base_error_bound: SimDuration::from_millis(1),
            drift_bound_ppm_initial: 400.0,
            drift_bound_ppm_refined: 40.0,
            ntp_min_window: SimDuration::from_secs(60),
            ntp_max_samples: 64,
        }
    }
}

impl ResilientConfig {
    /// All §V countermeasures disabled: behaves like base Triad (the
    /// ablation baseline).
    pub fn all_disabled() -> Self {
        ResilientConfig {
            enable_deadline: false,
            enable_long_window: false,
            enable_chimer_filter: false,
            enable_rtt_filter: false,
            enable_gossip: false,
            enable_ta_cross_check: false,
            ..Default::default()
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics on nonsensical parameters.
    pub fn validate(&self) {
        self.base.validate();
        assert!(!self.deadline.is_zero(), "deadline must be positive");
        assert!(!self.ta_check_interval.is_zero(), "TA check interval must be positive");
        assert!(self.ntp_max_samples >= 4, "long-window fit needs samples");
        assert!(
            self.drift_bound_ppm_initial >= self.drift_bound_ppm_refined,
            "refinement must not loosen the drift bound"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_validates_with_all_features_on() {
        let cfg = ResilientConfig::default();
        cfg.validate();
        assert!(cfg.enable_deadline && cfg.enable_long_window);
        assert!(cfg.enable_chimer_filter && cfg.enable_rtt_filter);
        assert!(cfg.enable_gossip);
    }

    #[test]
    fn ablation_baseline_disables_everything() {
        let cfg = ResilientConfig::all_disabled();
        cfg.validate();
        assert!(!cfg.enable_deadline && !cfg.enable_long_window);
        assert!(!cfg.enable_chimer_filter && !cfg.enable_rtt_filter);
    }

    #[test]
    #[should_panic(expected = "deadline must be positive")]
    fn zero_deadline_rejected() {
        ResilientConfig { deadline: SimDuration::ZERO, ..Default::default() }.validate();
    }
}
