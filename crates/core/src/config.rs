//! Triad node configuration.

use sim::SimDuration;
use tsc::AexPause;

use crate::retry::{CircuitBreakerPolicy, RetryPolicy};

/// Tunable parameters of a Triad node.
///
/// Defaults reproduce the paper's setup: calibration regression over
/// round-trips with 0 s and 1 s TA sleeps (§IV: "TSC rate estimation is
/// performed through regression over roundtrips of messages with 0s-sleep
/// (immediate responses) and 1s-sleep at the TA").
#[derive(Debug, Clone, PartialEq)]
pub struct TriadConfig {
    /// Requested TA hold times (`s`) used as regression x-values.
    pub calib_sleeps: Vec<SimDuration>,
    /// Valid round-trips collected per sleep value before fitting.
    pub samples_per_sleep: usize,
    /// Extra wait beyond the requested sleep before a calibration probe is
    /// retransmitted (covers loss and attacker drops).
    pub probe_timeout: SimDuration,
    /// How long to wait for peer timestamps after an AEX before falling
    /// back to the TA (§III-D: "only asks the TA upon failure to receive
    /// any responses from peers").
    pub peer_timeout: SimDuration,
    /// The smallest timestamp increment used to preserve monotonicity when
    /// a peer timestamp is *behind* the local one.
    pub epsilon_ns: u64,
    /// How long the enclave thread stays suspended per AEX.
    pub aex_pause: AexPause,
    /// Cadence of the INC-vs-TSC cross-check on the monitoring thread.
    pub monitor_interval: SimDuration,
    /// Relative TSC-rate discrepancy (ppm) that triggers full
    /// recalibration.
    pub monitor_threshold_ppm: f64,
    /// Whether the time-reference anchor compensates half the measured
    /// round-trip (`ta_time + RTT/2`); disabling it reproduces a pure
    /// offset-toward-the-past error.
    pub rtt_half_correction: bool,
    /// How probe retransmissions are spaced; the default reproduces the
    /// legacy fixed-interval unlimited retry (no RNG draws), while
    /// [`RetryPolicy::hardened`] adds bounded exponential backoff with
    /// seeded jitter.
    pub probe_retry: RetryPolicy,
    /// Optional circuit breaker: after the configured number of
    /// consecutive probe timeouts the node stops hammering the TA and only
    /// sends one trial probe per cooldown until the TA answers again.
    pub ta_breaker: Option<CircuitBreakerPolicy>,
    /// Base half-width (ns) of the uncertainty attached to degraded-mode
    /// [`wire::TimeReading`]s while the node is OK.
    pub reading_uncertainty_ns: u64,
    /// Widening rate of the reading uncertainty while the node is degraded
    /// (Tainted / recalibrating), in parts-per-million of elapsed
    /// staleness: `uncertainty += ppm · 1e-6 · ns_since_degraded`.
    pub reading_drift_ppm: f64,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig {
            calib_sleeps: vec![SimDuration::ZERO, SimDuration::from_secs(1)],
            samples_per_sleep: 3,
            probe_timeout: SimDuration::from_millis(500),
            peer_timeout: SimDuration::from_millis(10),
            epsilon_ns: 1,
            aex_pause: AexPause::default(),
            monitor_interval: SimDuration::from_millis(100),
            monitor_threshold_ppm: 100.0,
            rtt_half_correction: true,
            probe_retry: RetryPolicy::default(),
            ta_breaker: None,
            reading_uncertainty_ns: 1_000_000, // 1 ms
            reading_drift_ppm: 200.0,
        }
    }
}

impl TriadConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if no sleeps are configured, fewer than two *distinct* sleeps
    /// exist (the regression slope would be undefined), or
    /// `samples_per_sleep == 0`.
    pub fn validate(&self) {
        assert!(
            self.calib_sleeps.len() >= 2,
            "calibration needs at least two sleep values for a slope"
        );
        let mut distinct = self.calib_sleeps.clone();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() >= 2, "calibration sleeps must not all be equal");
        assert!(self.samples_per_sleep > 0, "need at least one sample per sleep");
        assert!(self.epsilon_ns > 0, "epsilon must be a positive increment");
        self.probe_retry.validate();
        if let Some(b) = &self.ta_breaker {
            b.validate();
        }
        assert!(self.reading_uncertainty_ns > 0, "reading uncertainty floor must be positive");
        assert!(self.reading_drift_ppm >= 0.0, "reading drift rate cannot be negative");
    }

    /// A configuration with every robustness feature enabled: hardened
    /// retry backoff and the TA circuit breaker.
    pub fn hardened() -> Self {
        TriadConfig {
            probe_retry: RetryPolicy::hardened(),
            ta_breaker: Some(CircuitBreakerPolicy::default()),
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = TriadConfig::default();
        cfg.validate();
        assert_eq!(cfg.calib_sleeps.len(), 2);
        assert_eq!(cfg.calib_sleeps[0], SimDuration::ZERO);
        assert_eq!(cfg.calib_sleeps[1], SimDuration::from_secs(1));
        assert_eq!(cfg.epsilon_ns, 1);
        // The default retry policy must stay bit-compatible with the
        // legacy schedule so seeded experiments replay unchanged.
        assert_eq!(cfg.probe_retry, RetryPolicy::default());
        assert!(cfg.ta_breaker.is_none());
    }

    #[test]
    fn hardened_preset_is_valid_and_bounded() {
        let cfg = TriadConfig::hardened();
        cfg.validate();
        assert!(cfg.probe_retry.max_attempts.is_some());
        assert!(cfg.ta_breaker.is_some());
    }

    #[test]
    #[should_panic(expected = "two sleep values")]
    fn single_sleep_rejected() {
        TriadConfig { calib_sleeps: vec![SimDuration::ZERO], ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "not all be equal")]
    fn equal_sleeps_rejected() {
        TriadConfig {
            calib_sleeps: vec![SimDuration::from_secs(1), SimDuration::from_secs(1)],
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "one sample per sleep")]
    fn zero_samples_rejected() {
        TriadConfig { samples_per_sleep: 0, ..Default::default() }.validate();
    }
}
