//! Triad node configuration.

use sim::SimDuration;
use tsc::AexPause;

/// Tunable parameters of a Triad node.
///
/// Defaults reproduce the paper's setup: calibration regression over
/// round-trips with 0 s and 1 s TA sleeps (§IV: "TSC rate estimation is
/// performed through regression over roundtrips of messages with 0s-sleep
/// (immediate responses) and 1s-sleep at the TA").
#[derive(Debug, Clone, PartialEq)]
pub struct TriadConfig {
    /// Requested TA hold times (`s`) used as regression x-values.
    pub calib_sleeps: Vec<SimDuration>,
    /// Valid round-trips collected per sleep value before fitting.
    pub samples_per_sleep: usize,
    /// Extra wait beyond the requested sleep before a calibration probe is
    /// retransmitted (covers loss and attacker drops).
    pub probe_timeout: SimDuration,
    /// How long to wait for peer timestamps after an AEX before falling
    /// back to the TA (§III-D: "only asks the TA upon failure to receive
    /// any responses from peers").
    pub peer_timeout: SimDuration,
    /// The smallest timestamp increment used to preserve monotonicity when
    /// a peer timestamp is *behind* the local one.
    pub epsilon_ns: u64,
    /// How long the enclave thread stays suspended per AEX.
    pub aex_pause: AexPause,
    /// Cadence of the INC-vs-TSC cross-check on the monitoring thread.
    pub monitor_interval: SimDuration,
    /// Relative TSC-rate discrepancy (ppm) that triggers full
    /// recalibration.
    pub monitor_threshold_ppm: f64,
    /// Whether the time-reference anchor compensates half the measured
    /// round-trip (`ta_time + RTT/2`); disabling it reproduces a pure
    /// offset-toward-the-past error.
    pub rtt_half_correction: bool,
}

impl Default for TriadConfig {
    fn default() -> Self {
        TriadConfig {
            calib_sleeps: vec![SimDuration::ZERO, SimDuration::from_secs(1)],
            samples_per_sleep: 3,
            probe_timeout: SimDuration::from_millis(500),
            peer_timeout: SimDuration::from_millis(10),
            epsilon_ns: 1,
            aex_pause: AexPause::default(),
            monitor_interval: SimDuration::from_millis(100),
            monitor_threshold_ppm: 100.0,
            rtt_half_correction: true,
        }
    }
}

impl TriadConfig {
    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics if no sleeps are configured, fewer than two *distinct* sleeps
    /// exist (the regression slope would be undefined), or
    /// `samples_per_sleep == 0`.
    pub fn validate(&self) {
        assert!(
            self.calib_sleeps.len() >= 2,
            "calibration needs at least two sleep values for a slope"
        );
        let mut distinct = self.calib_sleeps.clone();
        distinct.sort();
        distinct.dedup();
        assert!(distinct.len() >= 2, "calibration sleeps must not all be equal");
        assert!(self.samples_per_sleep > 0, "need at least one sample per sleep");
        assert!(self.epsilon_ns > 0, "epsilon must be a positive increment");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid_and_matches_paper() {
        let cfg = TriadConfig::default();
        cfg.validate();
        assert_eq!(cfg.calib_sleeps.len(), 2);
        assert_eq!(cfg.calib_sleeps[0], SimDuration::ZERO);
        assert_eq!(cfg.calib_sleeps[1], SimDuration::from_secs(1));
        assert_eq!(cfg.epsilon_ns, 1);
    }

    #[test]
    #[should_panic(expected = "two sleep values")]
    fn single_sleep_rejected() {
        TriadConfig { calib_sleeps: vec![SimDuration::ZERO], ..Default::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "not all be equal")]
    fn equal_sleeps_rejected() {
        TriadConfig {
            calib_sleeps: vec![SimDuration::from_secs(1), SimDuration::from_secs(1)],
            ..Default::default()
        }
        .validate();
    }

    #[test]
    #[should_panic(expected = "one sample per sleep")]
    fn zero_samples_rejected() {
        TriadConfig { samples_per_sleep: 0, ..Default::default() }.validate();
    }
}
