//! The calibration sample collector and frequency fit (§III-C).
//!
//! Triad estimates its TSC frequency against the TA's reference clock by
//! measuring TSC increments across round-trips whose TA-side hold time `s`
//! it controls, then regressing `ΔTSC` on `s`. The slope is `F^calib` in
//! ticks per reference second; the intercept absorbs the (unknown) network
//! round-trip, which is precisely why only *differential* delay matters —
//! and why an attacker adding delay selectively by `s` (F+/F–) tilts the
//! slope (§III-C).

use sim::SimDuration;
use stats::{LinearFit, Regression};

/// Collects `(sleep, ΔTSC)` round-trip samples and fits `F^calib`.
#[derive(Debug, Clone, PartialEq)]
pub struct Calibrator {
    sleeps: Vec<SimDuration>,
    samples_per_sleep: usize,
    counts: Vec<usize>,
    regression: Regression,
}

impl Calibrator {
    /// Creates a collector for the given sleep schedule.
    ///
    /// # Panics
    ///
    /// Panics on an empty sleep list or zero samples per sleep.
    pub fn new(sleeps: Vec<SimDuration>, samples_per_sleep: usize) -> Self {
        assert!(!sleeps.is_empty(), "calibrator needs sleep values");
        assert!(samples_per_sleep > 0, "calibrator needs samples");
        let n = sleeps.len();
        Calibrator { sleeps, samples_per_sleep, counts: vec![0; n], regression: Regression::new() }
    }

    /// The sleep duration at schedule index `idx`.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn sleep_at(&self, idx: usize) -> SimDuration {
        self.sleeps[idx]
    }

    /// Index of the next sleep value needing a sample (fewest samples
    /// first, ties to the lower index), or `None` when collection is
    /// complete.
    pub fn next_probe(&self) -> Option<usize> {
        self.counts
            .iter()
            .enumerate()
            .filter(|&(_, &c)| c < self.samples_per_sleep)
            .min_by_key(|&(i, &c)| (c, i))
            .map(|(i, _)| i)
    }

    /// Records one valid (AEX-free) round-trip measurement.
    ///
    /// # Panics
    ///
    /// Panics when `idx` is out of range.
    pub fn record(&mut self, idx: usize, delta_ticks: u64) {
        self.counts[idx] += 1;
        self.regression.push(self.sleeps[idx].as_secs_f64(), delta_ticks as f64);
    }

    /// True when every sleep value has enough samples.
    pub fn is_complete(&self) -> bool {
        self.next_probe().is_none()
    }

    /// Total samples recorded so far.
    pub fn sample_count(&self) -> usize {
        self.regression.len()
    }

    /// The least-squares fit; slope is `F^calib` in Hz.
    ///
    /// Returns `None` until at least two distinct sleeps have samples.
    pub fn fit(&self) -> Option<LinearFit> {
        self.regression.ols()
    }

    /// Discards all samples (a new full calibration begins).
    pub fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.regression.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn secs(s: u64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn round_robin_collection() {
        let mut c = Calibrator::new(vec![SimDuration::ZERO, secs(1)], 2);
        assert_eq!(c.next_probe(), Some(0));
        c.record(0, 100);
        assert_eq!(c.next_probe(), Some(1), "fewest-samples-first alternates");
        c.record(1, 200);
        assert_eq!(c.next_probe(), Some(0));
        c.record(0, 100);
        c.record(1, 200);
        assert!(c.is_complete());
        assert_eq!(c.next_probe(), None);
        assert_eq!(c.sample_count(), 4);
    }

    #[test]
    fn fit_recovers_frequency_with_symmetric_delays() {
        // f = 2.9 GHz, both probes see the same 400 µs round-trip.
        let f = 2.9e9;
        let rtt = 400e-6;
        let mut c = Calibrator::new(vec![SimDuration::ZERO, secs(1)], 3);
        for _ in 0..3 {
            c.record(0, (f * rtt) as u64);
            c.record(1, (f * (1.0 + rtt)) as u64);
        }
        let fit = c.fit().unwrap();
        assert!((fit.slope - f).abs() / f < 1e-9, "slope {}", fit.slope);
        // The intercept absorbs the round-trip.
        assert!((fit.intercept - f * rtt).abs() / (f * rtt) < 1e-6);
    }

    #[test]
    fn asymmetric_delay_tilts_slope_like_f_plus() {
        // +100 ms only on the 1 s probes → slope 1.1 f (the F+ attack).
        let f = 2.9e9;
        let rtt = 400e-6;
        let mut c = Calibrator::new(vec![SimDuration::ZERO, secs(1)], 3);
        for _ in 0..3 {
            c.record(0, (f * rtt) as u64);
            c.record(1, (f * (1.0 + rtt + 0.1)) as u64);
        }
        let slope = c.fit().unwrap().slope;
        assert!((slope / f - 1.1).abs() < 1e-9, "slope ratio {}", slope / f);
    }

    #[test]
    fn reset_clears_everything() {
        let mut c = Calibrator::new(vec![SimDuration::ZERO, secs(1)], 1);
        c.record(0, 1);
        c.record(1, 2);
        assert!(c.is_complete());
        c.reset();
        assert!(!c.is_complete());
        assert_eq!(c.sample_count(), 0);
        assert_eq!(c.next_probe(), Some(0));
    }

    #[test]
    fn fit_unavailable_with_single_x() {
        let mut c = Calibrator::new(vec![SimDuration::ZERO, secs(1)], 2);
        c.record(0, 100);
        c.record(0, 101);
        assert!(c.fit().is_none());
    }
}
