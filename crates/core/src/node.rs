//! The Triad node state machine.
//!
//! Implements the protocol of §III-B/C/D as an actor over the composed
//! runtime:
//!
//! - **FullCalib**: regression-based TSC frequency calibration against the
//!   TA, followed by a time-reference exchange;
//! - **OK**: serving monotonic timestamps, answering peer requests;
//! - **Tainted**: an AEX severed time continuity; on resume (AEX-Notify)
//!   the node asks its peers for a timestamp;
//! - **RefCalib**: no peer answered — refresh the time reference with the
//!   TA.
//!
//! The peer-untaint policy is the paper's: a peer timestamp higher than the
//! local pre-interrupt one is adopted wholesale; otherwise the local clock
//! is kept, ε-bumped if needed for monotonicity. This is the policy that
//! makes every node follow the fastest clock in the cluster (§III-D) and
//! what the F– attack exploits.

use netsim::Addr;
use rand::rngs::StdRng;
use sim::{Actor, Ctx, EventId, SimDuration, SimTime};
use trace::NodeStateTag;
use wire::Message;

use runtime::{open_delivery, send_message, ClockState, SysEvent, World};

use crate::calib::Calibrator;
use crate::config::TriadConfig;

const TOKEN_MONITOR: u64 = 1 << 63;
const TOKEN_PEER_TIMEOUT: u64 = 1 << 62;
const TOKEN_PROBE_RETRY: u64 = 1 << 61;
const TOKEN_BREAKER: u64 = 1 << 60;
const TOKEN_MASK: u64 = (1 << 60) - 1;

/// An in-flight exchange with the Time Authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingProbe {
    nonce: u64,
    /// `Some(idx)` = speed probe for sleep index `idx`; `None` = the
    /// time-reference exchange.
    sleep_idx: Option<usize>,
    send_ticks: u64,
    aex_count_at_send: u64,
    /// 0-based retransmission count within the current burst (0 = the
    /// initial transmission); drives the backoff schedule.
    attempt: u32,
    retry: EventId,
}

/// An in-flight peer untainting round.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingPeerRound {
    nonce: u64,
    responses: Vec<u64>,
    expected: usize,
    timeout: EventId,
}

/// One Triad protocol node (the paper's primary artifact).
#[derive(Debug)]
pub struct TriadNode {
    me: Addr,
    index: usize,
    peers: Vec<Addr>,
    cfg: TriadConfig,
    state: NodeStateTag,

    // Clock: anchor + calibrated frequency (mirrored into `World::clocks`).
    anchor_ref_ns: f64,
    anchor_ticks: u64,
    f_calib_hz: Option<f64>,
    clock_valid: bool,
    last_served_ns: f64,

    calibrator: Calibrator,
    pending_probe: Option<PendingProbe>,
    pending_peer: Option<PendingPeerRound>,
    taint_snapshot_ns: Option<f64>,
    resume_pending: bool,
    aex_count: u64,

    monitor_anchor: Option<(SimTime, u64)>,
    inc_ticks_per_inc: Option<f64>,
    /// Detections raised by the INC monitor (visible for experiments).
    pub monitor_detections: u64,

    // Fault tolerance: crash-recovery, retry bookkeeping, degradation.
    crashed: bool,
    /// Bumped on every crash so timer chains armed before the crash are
    /// recognizably stale after the restart.
    timer_epoch: u64,
    /// Consecutive probe timeouts without a TA answer (feeds the breaker).
    probe_failures: u32,
    breaker_open: bool,
    /// The probe stage to resume on the half-open trial.
    breaker_stage: Option<Option<usize>>,
    /// When the node last left the OK state (staleness anchor for the
    /// widening reading uncertainty); `None` while serving normally.
    degraded_since: Option<SimTime>,

    next_nonce: u64,
}

impl TriadNode {
    /// Creates a node at `me` with the given cluster peers.
    ///
    /// # Panics
    ///
    /// Panics if `me` is the TA address, appears in `peers`, or the
    /// configuration is invalid.
    pub fn new(me: Addr, peers: Vec<Addr>, cfg: TriadConfig) -> Self {
        assert!(me.0 >= 1, "a Triad node cannot use the TA address");
        assert!(!peers.contains(&me), "a node is not its own peer");
        cfg.validate();
        let calibrator = Calibrator::new(cfg.calib_sleeps.clone(), cfg.samples_per_sleep);
        TriadNode {
            me,
            index: (me.0 - 1) as usize,
            peers,
            cfg,
            state: NodeStateTag::FullCalib,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: None,
            clock_valid: false,
            last_served_ns: 0.0,
            calibrator,
            pending_probe: None,
            pending_peer: None,
            taint_snapshot_ns: None,
            resume_pending: false,
            aex_count: 0,
            monitor_anchor: None,
            inc_ticks_per_inc: None,
            monitor_detections: 0,
            crashed: false,
            timer_epoch: 0,
            probe_failures: 0,
            breaker_open: false,
            breaker_stage: None,
            degraded_since: None,
            next_nonce: 0,
        }
    }

    /// The node's network address.
    pub fn addr(&self) -> Addr {
        self.me
    }

    /// The node's current protocol state.
    pub fn state(&self) -> NodeStateTag {
        self.state
    }

    /// The calibrated TSC frequency, once the first calibration completed.
    pub fn calibrated_hz(&self) -> Option<f64> {
        self.f_calib_hz
    }

    /// True while the node's platform is down (between `Crash` and
    /// `Restart` fault events).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// True while the TA circuit breaker is open (no TA traffic is sent).
    pub fn breaker_is_open(&self) -> bool {
        self.breaker_open
    }

    // ------------------------------------------------------------------
    // Clock arithmetic
    // ------------------------------------------------------------------

    fn clock_ns(&self, ticks: u64) -> Option<f64> {
        let f = self.f_calib_hz?;
        if !self.clock_valid {
            return None;
        }
        let dticks = ticks as f64 - self.anchor_ticks as f64;
        Some(self.anchor_ref_ns + dticks / f * 1e9)
    }

    fn publish_clock(&self, world: &mut World) {
        world.clocks[self.index] = ClockState {
            valid: self.clock_valid,
            anchor_ref_ns: self.anchor_ref_ns,
            anchor_ticks: self.anchor_ticks,
            f_calib_hz: self.f_calib_hz.unwrap_or(1.0),
            // Base Triad nodes carry no self-assessed error bound; the
            // serving layer substitutes its configured floor.
            uncertainty_ns: 0.0,
        };
    }

    fn set_anchor(&mut self, world: &mut World, ticks: u64, ref_ns: f64) {
        self.anchor_ref_ns = ref_ns;
        self.anchor_ticks = ticks;
        self.clock_valid = true;
        self.publish_clock(world);
    }

    /// A monotonic timestamp for serving (peer or client). `None` while
    /// the clock is invalid.
    fn serve_ns(&mut self, ticks: u64) -> Option<u64> {
        let now = self.clock_ns(ticks)?;
        let served = if now > self.last_served_ns {
            now
        } else {
            self.last_served_ns + self.cfg.epsilon_ns as f64
        };
        self.last_served_ns = served;
        Some(served as u64)
    }

    // ------------------------------------------------------------------
    // State transitions
    // ------------------------------------------------------------------

    fn enter_state(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, state: NodeStateTag) {
        self.state = state;
        let now = ctx.now();
        // Track degradation staleness: the reading uncertainty widens from
        // the instant the node left OK and collapses when it returns.
        match state {
            NodeStateTag::Ok => self.degraded_since = None,
            _ => {
                if self.degraded_since.is_none() {
                    self.degraded_since = Some(now);
                }
            }
        }
        ctx.world.recorder.node_mut(self.index).states.enter(now, state);
    }

    fn fresh_nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce & TOKEN_MASK
    }

    // ------------------------------------------------------------------
    // Calibration (FullCalib / RefCalib)
    // ------------------------------------------------------------------

    fn begin_full_calibration(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        self.enter_state(ctx, NodeStateTag::FullCalib);
        self.calibrator.reset();
        self.abandon_probe(ctx);
        self.abandon_peer_round(ctx);
        self.send_next_speed_probe(ctx);
    }

    fn abandon_probe(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if let Some(p) = self.pending_probe.take() {
            ctx.cancel(p.retry);
        }
    }

    fn abandon_peer_round(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if let Some(p) = self.pending_peer.take() {
            ctx.cancel(p.timeout);
        }
    }

    fn send_next_speed_probe(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        match self.calibrator.next_probe() {
            Some(idx) => self.send_probe(ctx, Some(idx)),
            None => {
                // Speed fit complete → F^calib, then anchor the reference.
                let fit = self
                    .calibrator
                    .fit()
                    .expect("complete calibrator always has two distinct sleeps");
                self.f_calib_hz = Some(fit.slope);
                let now = ctx.now();
                ctx.world.recorder.node_mut(self.index).calibrations_hz.push((now, fit.slope));
                self.send_probe(ctx, None);
            }
        }
    }

    fn send_probe(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, sleep_idx: Option<usize>) {
        self.send_probe_attempt(ctx, sleep_idx, 0);
    }

    fn send_probe_attempt(
        &mut self,
        ctx: &mut Ctx<'_, World, SysEvent>,
        sleep_idx: Option<usize>,
        attempt: u32,
    ) {
        self.abandon_probe(ctx);
        let nonce = self.fresh_nonce();
        let sleep = match sleep_idx {
            Some(idx) => self.calibrator.sleep_at(idx),
            None => SimDuration::ZERO,
        };
        let msg = Message::CalibrationRequest { nonce, sleep_ns: sleep.as_nanos() };
        send_message(ctx, self.me, World::TA_ADDR, &msg);
        let backoff = self.cfg.probe_retry.backoff(self.cfg.probe_timeout, attempt, ctx.rng);
        let retry = ctx.schedule_in(sleep + backoff, SysEvent::timer(TOKEN_PROBE_RETRY | nonce));
        let now = ctx.now();
        self.pending_probe = Some(PendingProbe {
            nonce,
            sleep_idx,
            send_ticks: ctx.world.read_tsc(self.me, now),
            aex_count_at_send: self.aex_count,
            attempt,
            retry,
        });
    }

    /// The retry timer fired and the probe is still outstanding: the TA
    /// did not answer in time. Retransmit under the backoff schedule, or
    /// trip the circuit breaker after too many consecutive failures.
    fn on_probe_timeout(
        &mut self,
        ctx: &mut Ctx<'_, World, SysEvent>,
        sleep_idx: Option<usize>,
        attempt: u32,
    ) {
        self.probe_failures = self.probe_failures.saturating_add(1);
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.index).probe_retries.increment(now);

        if let Some(breaker) = self.cfg.ta_breaker {
            if self.probe_failures >= breaker.failure_threshold {
                // Stop hammering an unreachable TA; try again once per
                // cooldown until it answers (half-open trials).
                self.pending_probe = None;
                self.breaker_open = true;
                self.breaker_stage = Some(sleep_idx);
                ctx.world.recorder.node_mut(self.index).breaker_opens.increment(now);
                ctx.schedule_in(
                    breaker.cooldown,
                    SysEvent::timer(TOKEN_BREAKER | (self.timer_epoch & TOKEN_MASK)),
                );
                return;
            }
        }
        let next = attempt + 1;
        // A burst that exhausts its attempt budget restarts from attempt 0
        // (the backoff re-tightens); giving up entirely is the breaker's
        // job, not the retry schedule's.
        let next = if self.cfg.probe_retry.exhausted(next) { 0 } else { next };
        self.pending_probe = None;
        self.send_probe_attempt(ctx, sleep_idx, next);
    }

    /// Cooldown elapsed: close the breaker and send one trial probe. A
    /// further timeout re-opens it immediately (`probe_failures` is still
    /// above the threshold).
    fn on_breaker_timer(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if !self.breaker_open {
            return;
        }
        self.breaker_open = false;
        let stage = self.breaker_stage.take().expect("open breaker remembers its probe stage");
        self.send_probe_attempt(ctx, stage, 0);
    }

    fn on_calibration_response(
        &mut self,
        ctx: &mut Ctx<'_, World, SysEvent>,
        nonce: u64,
        ta_time_ns: u64,
    ) {
        let Some(probe) = self.pending_probe else { return };
        if probe.nonce != nonce {
            return; // stale response from an abandoned probe
        }
        self.pending_probe = None;
        ctx.cancel(probe.retry);
        self.probe_failures = 0; // the TA is reachable again

        let now = ctx.now();
        let recv_ticks = ctx.world.read_tsc(self.me, now);

        if probe.aex_count_at_send != self.aex_count {
            // The monitoring thread was interrupted mid-round-trip: the
            // measurement is unbounded and must be discarded (§III-C).
            self.send_probe(ctx, probe.sleep_idx);
            return;
        }

        match probe.sleep_idx {
            Some(idx) => {
                self.calibrator.record(idx, recv_ticks.saturating_sub(probe.send_ticks));
                self.send_next_speed_probe(ctx);
            }
            None => {
                // Time-reference exchange: anchor to the TA timestamp.
                let f = self.f_calib_hz.expect("reference exchange follows speed fit");
                let rtt_ticks = recv_ticks.saturating_sub(probe.send_ticks);
                let correction_ns = if self.cfg.rtt_half_correction {
                    rtt_ticks as f64 / f * 1e9 / 2.0
                } else {
                    0.0
                };
                self.set_anchor(ctx.world, recv_ticks, ta_time_ns as f64 + correction_ns);
                ctx.world.recorder.node_mut(self.index).ta_references.increment(now);
                self.taint_snapshot_ns = None;
                self.enter_state(ctx, NodeStateTag::Ok);
            }
        }
    }

    // ------------------------------------------------------------------
    // AEX handling (taint / resume / peer untainting)
    // ------------------------------------------------------------------

    fn on_aex(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        self.aex_count += 1;
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.index).aex_events.increment(now);
        // The monitoring window is severed.
        self.monitor_anchor = None;

        match self.state {
            NodeStateTag::FullCalib => {
                // Probes self-invalidate via the AEX counter; nothing else.
            }
            NodeStateTag::Ok => {
                let ticks = ctx.world.read_tsc(self.me, now);
                self.taint_snapshot_ns = self.clock_ns(ticks);
                self.enter_state(ctx, NodeStateTag::Tainted);
                self.schedule_resume(ctx);
            }
            NodeStateTag::RefCalib => {
                // Abandon the TA exchange; go back through the peer path
                // once the enclave resumes.
                self.abandon_probe(ctx);
                self.enter_state(ctx, NodeStateTag::Tainted);
                self.schedule_resume(ctx);
            }
            NodeStateTag::Tainted => {
                // Another AEX while already tainted (e.g. machine-wide on
                // top of core-local): ensure a resume is on its way.
                self.schedule_resume(ctx);
            }
            // A crashed platform takes no interrupts (events are ignored
            // before dispatch); unreachable, but harmless.
            NodeStateTag::Crashed => {}
        }
    }

    fn schedule_resume(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if self.resume_pending {
            return;
        }
        self.resume_pending = true;
        let pause = self.cfg.aex_pause.sample(ctx.rng);
        ctx.schedule_in(pause, SysEvent::AexResume);
    }

    fn on_resume(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        self.resume_pending = false;
        if self.state != NodeStateTag::Tainted {
            return;
        }
        self.abandon_peer_round(ctx);
        if self.peers.is_empty() {
            self.fall_back_to_ta(ctx);
            return;
        }
        let nonce = self.fresh_nonce();
        for &peer in &self.peers.clone() {
            send_message(ctx, self.me, peer, &Message::PeerTimeRequest { nonce });
        }
        let timeout =
            ctx.schedule_in(self.cfg.peer_timeout, SysEvent::timer(TOKEN_PEER_TIMEOUT | nonce));
        self.pending_peer = Some(PendingPeerRound {
            nonce,
            responses: Vec::new(),
            expected: self.peers.len(),
            timeout,
        });
    }

    fn on_peer_response(
        &mut self,
        ctx: &mut Ctx<'_, World, SysEvent>,
        nonce: u64,
        timestamp_ns: u64,
    ) {
        let Some(round) = self.pending_peer.as_mut() else { return };
        if round.nonce != nonce {
            return;
        }
        round.responses.push(timestamp_ns);
        if round.responses.len() == round.expected {
            let round = self.pending_peer.take().expect("round present");
            ctx.cancel(round.timeout);
            self.conclude_peer_round(ctx, round.responses);
        }
    }

    fn on_peer_timeout(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, nonce: u64) {
        let Some(round) = self.pending_peer.as_ref() else { return };
        if round.nonce != nonce {
            return;
        }
        let round = self.pending_peer.take().expect("round present");
        self.conclude_peer_round(ctx, round.responses);
    }

    /// Applies the §III-D untaint policy to the collected peer timestamps.
    fn conclude_peer_round(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, responses: Vec<u64>) {
        if self.state != NodeStateTag::Tainted {
            return;
        }
        if responses.is_empty() {
            self.fall_back_to_ta(ctx);
            return;
        }
        let now = ctx.now();
        let ticks = ctx.world.read_tsc(self.me, now);
        let local_pre_interrupt =
            self.taint_snapshot_ns.expect("tainted state always has a snapshot");
        let best_peer = *responses.iter().max().expect("non-empty");

        if (best_peer as f64) > local_pre_interrupt {
            // "the incoming timestamp becomes the new reference"
            self.set_anchor(ctx.world, ticks, best_peer as f64);
            ctx.world.recorder.node_mut(self.index).peer_adoptions.increment(now);
        } else {
            // "the local timestamp is increased by the smallest possible
            // increment to ensure monotonicity"
            let own_now = self.clock_ns(ticks).expect("clock was valid before the taint");
            if own_now <= local_pre_interrupt {
                self.set_anchor(ctx.world, ticks, local_pre_interrupt + self.cfg.epsilon_ns as f64);
            }
        }
        ctx.world.recorder.node_mut(self.index).peer_untaints.increment(now);
        self.taint_snapshot_ns = None;
        self.enter_state(ctx, NodeStateTag::Ok);
    }

    fn fall_back_to_ta(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        self.enter_state(ctx, NodeStateTag::RefCalib);
        self.send_probe(ctx, None);
    }

    // ------------------------------------------------------------------
    // Crash / recovery (fault injection)
    // ------------------------------------------------------------------

    /// The platform goes down: all enclave state is lost. Only
    /// `last_served_ns` survives — Triad seals the monotonic serving floor
    /// outside the enclave, so a rebooted node can never serve a timestamp
    /// below one it already handed out.
    fn on_crash(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.timer_epoch += 1; // orphan every timer chain armed pre-crash
        self.abandon_probe(ctx);
        self.abandon_peer_round(ctx);
        self.calibrator.reset();
        self.f_calib_hz = None;
        self.clock_valid = false;
        self.taint_snapshot_ns = None;
        self.resume_pending = false;
        self.aex_count = 0;
        self.monitor_anchor = None;
        self.inc_ticks_per_inc = None;
        self.probe_failures = 0;
        self.breaker_open = false;
        self.breaker_stage = None;
        self.publish_clock(ctx.world);
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.index).crashes.increment(now);
        self.enter_state(ctx, NodeStateTag::Crashed);
    }

    /// The platform boots again: the node must re-earn a clock through a
    /// full calibration before serving anything.
    fn on_restart(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        self.begin_full_calibration(ctx);
        self.schedule_monitor(ctx);
    }

    fn monitor_token(&self) -> u64 {
        TOKEN_MONITOR | (self.timer_epoch & TOKEN_MASK)
    }

    fn schedule_monitor(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        ctx.schedule_in(self.cfg.monitor_interval, SysEvent::timer(self.monitor_token()));
    }

    // ------------------------------------------------------------------
    // INC monitoring (§IV-A.1)
    // ------------------------------------------------------------------

    fn on_monitor_tick(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        let now = ctx.now();
        let ticks_now = ctx.world.read_tsc(self.me, now);
        if let Some((t0, ticks0)) = self.monitor_anchor {
            // Only windows with uninterrupted execution count; AEXs clear
            // the anchor.
            let wall = now - t0;
            if !wall.is_zero() {
                let host = ctx.world.host(self.me);
                let core_hz = host.core.current_hz();
                let inc_model = host.inc.clone();
                let inc = sample_inc(&inc_model, wall, core_hz, ctx.rng);
                if inc > 0 {
                    let tsc_delta = ticks_now.saturating_sub(ticks0);
                    let ratio = tsc_delta as f64 / inc as f64;
                    match self.inc_ticks_per_inc {
                        None => self.inc_ticks_per_inc = Some(ratio),
                        Some(baseline) => {
                            let ppm = (ratio / baseline - 1.0).abs() * 1e6;
                            if ppm > self.cfg.monitor_threshold_ppm {
                                self.monitor_detections += 1;
                                self.inc_ticks_per_inc = None;
                                self.monitor_anchor = Some((now, ticks_now));
                                self.schedule_monitor(ctx);
                                self.begin_full_calibration(ctx);
                                return;
                            }
                        }
                    }
                }
            }
        }
        self.monitor_anchor = Some((now, ticks_now));
        self.schedule_monitor(ctx);
    }

    // ------------------------------------------------------------------
    // Graceful degradation (staleness-aware readings)
    // ------------------------------------------------------------------

    /// Self-assessed uncertainty half-width: the configured floor, widened
    /// linearly with staleness while the node is degraded.
    fn reading_uncertainty_ns(&self, now: SimTime) -> u64 {
        let mut u = self.cfg.reading_uncertainty_ns as f64;
        if let Some(t0) = self.degraded_since {
            u += self.cfg.reading_drift_ppm * 1e-6 * (now - t0).as_nanos() as f64;
        }
        u as u64
    }

    /// Serves a degraded-tolerant reading: unlike the all-or-nothing
    /// client API, a Tainted or recalibrating node keeps answering with a
    /// monotonic estimate and an honestly widening uncertainty bound.
    fn serve_reading(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) -> Option<wire::TimeReading> {
        let now = ctx.now();
        let ticks = ctx.world.read_tsc(self.me, now);
        let estimate_ns = self.serve_ns(ticks)?;
        let uncertainty_ns = self.reading_uncertainty_ns(now);
        ctx.world
            .recorder
            .node_mut(self.index)
            .reading_uncertainty_ns
            .push(now, uncertainty_ns as f64);
        Some(wire::TimeReading {
            estimate_ns,
            uncertainty_ns,
            degraded: self.state != NodeStateTag::Ok,
        })
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    fn on_message(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, from: Addr, msg: Message) {
        match msg {
            Message::CalibrationResponse { nonce, ta_time_ns, .. } if from == World::TA_ADDR => {
                self.on_calibration_response(ctx, nonce, ta_time_ns);
            }
            Message::PeerTimeRequest { nonce } if self.state == NodeStateTag::Ok => {
                let now = ctx.now();
                let ticks = ctx.world.read_tsc(self.me, now);
                if let Some(ts) = self.serve_ns(ticks) {
                    send_message(
                        ctx,
                        self.me,
                        from,
                        &Message::PeerTimeResponse { nonce, timestamp_ns: ts },
                    );
                }
            }
            // Tainted/calibrating nodes stay silent (§III-D).
            Message::PeerTimeResponse { nonce, timestamp_ns } => {
                self.on_peer_response(ctx, nonce, timestamp_ns);
            }
            Message::ClientTimeRequest { nonce } => {
                let timestamp_ns = if self.state == NodeStateTag::Ok {
                    let now = ctx.now();
                    let ticks = ctx.world.read_tsc(self.me, now);
                    self.serve_ns(ticks)
                } else {
                    None
                };
                send_message(
                    ctx,
                    self.me,
                    from,
                    &Message::ClientTimeResponse { nonce, timestamp_ns },
                );
            }
            Message::TimeReadingRequest { nonce } => {
                let reading = self.serve_reading(ctx);
                send_message(ctx, self.me, from, &Message::TimeReadingResponse { nonce, reading });
            }
            // Hardened-protocol messages are ignored by the base node.
            _ => {}
        }
    }
}

/// Simulates the monitoring thread's INC count over an uninterrupted wall
/// window (the enclave counts for real; the simulation evaluates the
/// model).
fn sample_inc(model: &tsc::IncModel, wall: SimDuration, core_hz: f64, rng: &mut StdRng) -> u64 {
    model.measure(wall, core_hz, rng)
}

impl Actor<World, SysEvent> for TriadNode {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        let now = ctx.now();
        ctx.world.recorder.node_mut(self.index).states.enter(now, NodeStateTag::FullCalib);
        self.begin_full_calibration(ctx);
        self.schedule_monitor(ctx);
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        if self.crashed {
            // A downed platform processes nothing; only a restart fault
            // event brings it back.
            if ev == SysEvent::Restart {
                self.on_restart(ctx);
            }
            return;
        }
        match ev {
            SysEvent::Aex { .. } => self.on_aex(ctx),
            SysEvent::AexResume => self.on_resume(ctx),
            SysEvent::Crash => self.on_crash(ctx),
            SysEvent::Restart => {} // not crashed: spurious restart
            SysEvent::Deliver(d) => {
                if let Some(msg) = open_delivery(ctx.world, self.me, &d) {
                    self.on_message(ctx, d.src, msg);
                }
            }
            SysEvent::Timer { token } => {
                if token & TOKEN_MONITOR != 0 {
                    if token & TOKEN_MASK == self.timer_epoch & TOKEN_MASK {
                        self.on_monitor_tick(ctx);
                    }
                    // Stale chains from before a crash die out silently.
                } else if token & TOKEN_BREAKER != 0 {
                    if token & TOKEN_MASK == self.timer_epoch & TOKEN_MASK {
                        self.on_breaker_timer(ctx);
                    }
                } else if token & TOKEN_PEER_TIMEOUT != 0 {
                    self.on_peer_timeout(ctx, token & TOKEN_MASK);
                } else if token & TOKEN_PROBE_RETRY != 0 {
                    let nonce = token & TOKEN_MASK;
                    if let Some(probe) = self.pending_probe {
                        if probe.nonce == nonce {
                            // Response lost (attacker-dropped, or the TA is
                            // down): retry under the backoff schedule.
                            self.on_probe_timeout(ctx, probe.sleep_idx, probe.attempt);
                        }
                    }
                }
            }
            SysEvent::Sample => {}
        }
    }
}
