//! The Triad node state machine.
//!
//! Implements the protocol of §III-B/C/D as a pure [`proto::Machine`]
//! over the effect boundary — the same type runs under the deterministic
//! simulation (`runtime::MachineActor`) and the live UDP runtime:
//!
//! - **FullCalib**: regression-based TSC frequency calibration against the
//!   TA, followed by a time-reference exchange;
//! - **OK**: serving monotonic timestamps, answering peer requests;
//! - **Tainted**: an AEX severed time continuity; on resume (AEX-Notify)
//!   the node asks its peers for a timestamp;
//! - **RefCalib**: no peer answered — refresh the time reference with the
//!   TA.
//!
//! The peer-untaint policy is the paper's: a peer timestamp higher than the
//! local pre-interrupt one is adopted wholesale; otherwise the local clock
//! is kept, ε-bumped if needed for monotonicity. This is the policy that
//! makes every node follow the fastest clock in the cluster (§III-D) and
//! what the F– attack exploits.

use netsim::Addr;
use proto::{ClockState, Env, Input, Machine, AEX_RESUME_TOKEN, TA_ADDR};
use sim::{SimDuration, SimTime};
use trace::NodeStateTag;
use wire::Message;

use crate::calib::Calibrator;
use crate::config::TriadConfig;

const TOKEN_MONITOR: u64 = 1 << 63;
const TOKEN_PEER_TIMEOUT: u64 = 1 << 62;
const TOKEN_PROBE_RETRY: u64 = 1 << 61;
const TOKEN_BREAKER: u64 = 1 << 60;
const TOKEN_MASK: u64 = (1 << 60) - 1;

/// An in-flight exchange with the Time Authority.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PendingProbe {
    nonce: u64,
    /// `Some(idx)` = speed probe for sleep index `idx`; `None` = the
    /// time-reference exchange.
    sleep_idx: Option<usize>,
    send_ticks: u64,
    aex_count_at_send: u64,
    /// 0-based retransmission count within the current burst (0 = the
    /// initial transmission); drives the backoff schedule.
    attempt: u32,
}

impl PendingProbe {
    /// The retry timer armed for this probe (nonce-unique).
    fn retry_token(&self) -> u64 {
        TOKEN_PROBE_RETRY | self.nonce
    }
}

/// An in-flight peer untainting round.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PendingPeerRound {
    nonce: u64,
    responses: Vec<u64>,
    expected: usize,
}

impl PendingPeerRound {
    /// The round timeout armed for this round (nonce-unique).
    fn timeout_token(&self) -> u64 {
        TOKEN_PEER_TIMEOUT | self.nonce
    }
}

/// One Triad protocol node (the paper's primary artifact).
#[derive(Debug)]
pub struct TriadNode {
    me: Addr,
    index: usize,
    peers: Vec<Addr>,
    cfg: TriadConfig,
    state: NodeStateTag,

    // Clock: anchor + calibrated frequency (published through the Env).
    anchor_ref_ns: f64,
    anchor_ticks: u64,
    f_calib_hz: Option<f64>,
    clock_valid: bool,
    last_served_ns: f64,

    calibrator: Calibrator,
    pending_probe: Option<PendingProbe>,
    pending_peer: Option<PendingPeerRound>,
    taint_snapshot_ns: Option<f64>,
    resume_pending: bool,
    aex_count: u64,

    monitor_anchor: Option<(SimTime, u64)>,
    inc_ticks_per_inc: Option<f64>,
    /// Detections raised by the INC monitor (visible for experiments).
    pub monitor_detections: u64,

    // Fault tolerance: crash-recovery, retry bookkeeping, degradation.
    crashed: bool,
    /// Bumped on every crash so timer chains armed before the crash are
    /// recognizably stale after the restart.
    timer_epoch: u64,
    /// Consecutive probe timeouts without a TA answer (feeds the breaker).
    probe_failures: u32,
    breaker_open: bool,
    /// The probe stage to resume on the half-open trial.
    breaker_stage: Option<Option<usize>>,
    /// When the node last left the OK state (staleness anchor for the
    /// widening reading uncertainty); `None` while serving normally.
    degraded_since: Option<SimTime>,

    next_nonce: u64,
}

impl TriadNode {
    /// Creates a node at `me` with the given cluster peers.
    ///
    /// # Panics
    ///
    /// Panics if `me` is the TA address, appears in `peers`, or the
    /// configuration is invalid.
    pub fn new(me: Addr, peers: Vec<Addr>, cfg: TriadConfig) -> Self {
        assert!(me.0 >= 1, "a Triad node cannot use the TA address");
        assert!(!peers.contains(&me), "a node is not its own peer");
        cfg.validate();
        let calibrator = Calibrator::new(cfg.calib_sleeps.clone(), cfg.samples_per_sleep);
        TriadNode {
            me,
            index: (me.0 - 1) as usize,
            peers,
            cfg,
            state: NodeStateTag::FullCalib,
            anchor_ref_ns: 0.0,
            anchor_ticks: 0,
            f_calib_hz: None,
            clock_valid: false,
            last_served_ns: 0.0,
            calibrator,
            pending_probe: None,
            pending_peer: None,
            taint_snapshot_ns: None,
            resume_pending: false,
            aex_count: 0,
            monitor_anchor: None,
            inc_ticks_per_inc: None,
            monitor_detections: 0,
            crashed: false,
            timer_epoch: 0,
            probe_failures: 0,
            breaker_open: false,
            breaker_stage: None,
            degraded_since: None,
            next_nonce: 0,
        }
    }

    /// The node's current protocol state.
    pub fn state(&self) -> NodeStateTag {
        self.state
    }

    /// The calibrated TSC frequency, once the first calibration completed.
    pub fn calibrated_hz(&self) -> Option<f64> {
        self.f_calib_hz
    }

    /// True while the node's platform is down (between `Crash` and
    /// `Restart` fault events).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// True while the TA circuit breaker is open (no TA traffic is sent).
    pub fn breaker_is_open(&self) -> bool {
        self.breaker_open
    }

    // ------------------------------------------------------------------
    // Clock arithmetic
    // ------------------------------------------------------------------

    fn clock_ns(&self, ticks: u64) -> Option<f64> {
        let f = self.f_calib_hz?;
        if !self.clock_valid {
            return None;
        }
        let dticks = ticks as f64 - self.anchor_ticks as f64;
        Some(self.anchor_ref_ns + dticks / f * 1e9)
    }

    fn publish_clock(&self, env: &mut dyn Env) {
        env.publish_clock(ClockState {
            valid: self.clock_valid,
            anchor_ref_ns: self.anchor_ref_ns,
            anchor_ticks: self.anchor_ticks,
            f_calib_hz: self.f_calib_hz.unwrap_or(1.0),
            // Base Triad nodes carry no self-assessed error bound; the
            // serving layer substitutes its configured floor.
            uncertainty_ns: 0.0,
        });
    }

    fn set_anchor(&mut self, env: &mut dyn Env, ticks: u64, ref_ns: f64) {
        self.anchor_ref_ns = ref_ns;
        self.anchor_ticks = ticks;
        self.clock_valid = true;
        self.publish_clock(env);
    }

    /// A monotonic timestamp for serving (peer or client). `None` while
    /// the clock is invalid.
    fn serve_ns(&mut self, ticks: u64) -> Option<u64> {
        let now = self.clock_ns(ticks)?;
        let served = if now > self.last_served_ns {
            now
        } else {
            self.last_served_ns + self.cfg.epsilon_ns as f64
        };
        self.last_served_ns = served;
        Some(served as u64)
    }

    // ------------------------------------------------------------------
    // State transitions
    // ------------------------------------------------------------------

    fn enter_state(&mut self, env: &mut dyn Env, state: NodeStateTag) {
        self.state = state;
        let now = env.now();
        // Track degradation staleness: the reading uncertainty widens from
        // the instant the node left OK and collapses when it returns.
        match state {
            NodeStateTag::Ok => self.degraded_since = None,
            _ => {
                if self.degraded_since.is_none() {
                    self.degraded_since = Some(now);
                }
            }
        }
        env.recorder().node_mut(self.index).states.enter(now, state);
    }

    fn fresh_nonce(&mut self) -> u64 {
        self.next_nonce += 1;
        self.next_nonce & TOKEN_MASK
    }

    // ------------------------------------------------------------------
    // Calibration (FullCalib / RefCalib)
    // ------------------------------------------------------------------

    fn begin_full_calibration(&mut self, env: &mut dyn Env) {
        self.enter_state(env, NodeStateTag::FullCalib);
        self.calibrator.reset();
        self.abandon_probe(env);
        self.abandon_peer_round(env);
        self.send_next_speed_probe(env);
    }

    fn abandon_probe(&mut self, env: &mut dyn Env) {
        if let Some(p) = self.pending_probe.take() {
            env.cancel_timer(p.retry_token());
        }
    }

    fn abandon_peer_round(&mut self, env: &mut dyn Env) {
        if let Some(p) = self.pending_peer.take() {
            env.cancel_timer(p.timeout_token());
        }
    }

    fn send_next_speed_probe(&mut self, env: &mut dyn Env) {
        match self.calibrator.next_probe() {
            Some(idx) => self.send_probe(env, Some(idx)),
            None => {
                // Speed fit complete → F^calib, then anchor the reference.
                let fit = self
                    .calibrator
                    .fit()
                    .expect("complete calibrator always has two distinct sleeps");
                self.f_calib_hz = Some(fit.slope);
                let now = env.now();
                env.recorder().node_mut(self.index).calibrations_hz.push((now, fit.slope));
                self.send_probe(env, None);
            }
        }
    }

    fn send_probe(&mut self, env: &mut dyn Env, sleep_idx: Option<usize>) {
        self.send_probe_attempt(env, sleep_idx, 0);
    }

    fn send_probe_attempt(&mut self, env: &mut dyn Env, sleep_idx: Option<usize>, attempt: u32) {
        self.abandon_probe(env);
        let nonce = self.fresh_nonce();
        let sleep = match sleep_idx {
            Some(idx) => self.calibrator.sleep_at(idx),
            None => SimDuration::ZERO,
        };
        let msg = Message::CalibrationRequest { nonce, sleep_ns: sleep.as_nanos() };
        env.send(TA_ADDR, &msg);
        let backoff = self.cfg.probe_retry.backoff(self.cfg.probe_timeout, attempt, env.rng());
        env.set_timer(TOKEN_PROBE_RETRY | nonce, sleep + backoff);
        self.pending_probe = Some(PendingProbe {
            nonce,
            sleep_idx,
            send_ticks: env.read_tsc(),
            aex_count_at_send: self.aex_count,
            attempt,
        });
    }

    /// The retry timer fired and the probe is still outstanding: the TA
    /// did not answer in time. Retransmit under the backoff schedule, or
    /// trip the circuit breaker after too many consecutive failures.
    fn on_probe_timeout(&mut self, env: &mut dyn Env, sleep_idx: Option<usize>, attempt: u32) {
        self.probe_failures = self.probe_failures.saturating_add(1);
        let now = env.now();
        env.recorder().node_mut(self.index).probe_retries.increment(now);

        if let Some(breaker) = self.cfg.ta_breaker {
            if self.probe_failures >= breaker.failure_threshold {
                // Stop hammering an unreachable TA; try again once per
                // cooldown until it answers (half-open trials).
                self.pending_probe = None;
                self.breaker_open = true;
                self.breaker_stage = Some(sleep_idx);
                env.recorder().node_mut(self.index).breaker_opens.increment(now);
                env.set_timer(TOKEN_BREAKER | (self.timer_epoch & TOKEN_MASK), breaker.cooldown);
                return;
            }
        }
        let next = attempt + 1;
        // A burst that exhausts its attempt budget restarts from attempt 0
        // (the backoff re-tightens); giving up entirely is the breaker's
        // job, not the retry schedule's.
        let next = if self.cfg.probe_retry.exhausted(next) { 0 } else { next };
        self.pending_probe = None;
        self.send_probe_attempt(env, sleep_idx, next);
    }

    /// Cooldown elapsed: close the breaker and send one trial probe. A
    /// further timeout re-opens it immediately (`probe_failures` is still
    /// above the threshold).
    fn on_breaker_timer(&mut self, env: &mut dyn Env) {
        if !self.breaker_open {
            return;
        }
        self.breaker_open = false;
        let stage = self.breaker_stage.take().expect("open breaker remembers its probe stage");
        self.send_probe_attempt(env, stage, 0);
    }

    fn on_calibration_response(&mut self, env: &mut dyn Env, nonce: u64, ta_time_ns: u64) {
        let Some(probe) = self.pending_probe else { return };
        if probe.nonce != nonce {
            return; // stale response from an abandoned probe
        }
        self.pending_probe = None;
        env.cancel_timer(probe.retry_token());
        self.probe_failures = 0; // the TA is reachable again

        let now = env.now();
        let recv_ticks = env.read_tsc();

        if probe.aex_count_at_send != self.aex_count {
            // The monitoring thread was interrupted mid-round-trip: the
            // measurement is unbounded and must be discarded (§III-C).
            self.send_probe(env, probe.sleep_idx);
            return;
        }

        match probe.sleep_idx {
            Some(idx) => {
                self.calibrator.record(idx, recv_ticks.saturating_sub(probe.send_ticks));
                self.send_next_speed_probe(env);
            }
            None => {
                // Time-reference exchange: anchor to the TA timestamp.
                let f = self.f_calib_hz.expect("reference exchange follows speed fit");
                let rtt_ticks = recv_ticks.saturating_sub(probe.send_ticks);
                let correction_ns = if self.cfg.rtt_half_correction {
                    rtt_ticks as f64 / f * 1e9 / 2.0
                } else {
                    0.0
                };
                self.set_anchor(env, recv_ticks, ta_time_ns as f64 + correction_ns);
                env.recorder().node_mut(self.index).ta_references.increment(now);
                self.taint_snapshot_ns = None;
                self.enter_state(env, NodeStateTag::Ok);
            }
        }
    }

    // ------------------------------------------------------------------
    // AEX handling (taint / resume / peer untainting)
    // ------------------------------------------------------------------

    fn on_aex(&mut self, env: &mut dyn Env) {
        self.aex_count += 1;
        let now = env.now();
        env.recorder().node_mut(self.index).aex_events.increment(now);
        // The monitoring window is severed.
        self.monitor_anchor = None;

        match self.state {
            NodeStateTag::FullCalib => {
                // Probes self-invalidate via the AEX counter; nothing else.
            }
            NodeStateTag::Ok => {
                let ticks = env.read_tsc();
                self.taint_snapshot_ns = self.clock_ns(ticks);
                self.enter_state(env, NodeStateTag::Tainted);
                self.schedule_resume(env);
            }
            NodeStateTag::RefCalib => {
                // Abandon the TA exchange; go back through the peer path
                // once the enclave resumes.
                self.abandon_probe(env);
                self.enter_state(env, NodeStateTag::Tainted);
                self.schedule_resume(env);
            }
            NodeStateTag::Tainted => {
                // Another AEX while already tainted (e.g. machine-wide on
                // top of core-local): ensure a resume is on its way.
                self.schedule_resume(env);
            }
            // A crashed platform takes no interrupts (events are ignored
            // before dispatch); unreachable, but harmless.
            NodeStateTag::Crashed => {}
        }
    }

    fn schedule_resume(&mut self, env: &mut dyn Env) {
        if self.resume_pending {
            return;
        }
        self.resume_pending = true;
        let pause = self.cfg.aex_pause.sample(env.rng());
        env.set_timer(AEX_RESUME_TOKEN, pause);
    }

    fn on_resume(&mut self, env: &mut dyn Env) {
        self.resume_pending = false;
        if self.state != NodeStateTag::Tainted {
            return;
        }
        self.abandon_peer_round(env);
        if self.peers.is_empty() {
            self.fall_back_to_ta(env);
            return;
        }
        let nonce = self.fresh_nonce();
        for &peer in &self.peers.clone() {
            env.send(peer, &Message::PeerTimeRequest { nonce });
        }
        env.set_timer(TOKEN_PEER_TIMEOUT | nonce, self.cfg.peer_timeout);
        self.pending_peer =
            Some(PendingPeerRound { nonce, responses: Vec::new(), expected: self.peers.len() });
    }

    fn on_peer_response(&mut self, env: &mut dyn Env, nonce: u64, timestamp_ns: u64) {
        let Some(round) = self.pending_peer.as_mut() else { return };
        if round.nonce != nonce {
            return;
        }
        round.responses.push(timestamp_ns);
        if round.responses.len() == round.expected {
            let round = self.pending_peer.take().expect("round present");
            env.cancel_timer(round.timeout_token());
            self.conclude_peer_round(env, round.responses);
        }
    }

    fn on_peer_timeout(&mut self, env: &mut dyn Env, nonce: u64) {
        let Some(round) = self.pending_peer.as_ref() else { return };
        if round.nonce != nonce {
            return;
        }
        let round = self.pending_peer.take().expect("round present");
        self.conclude_peer_round(env, round.responses);
    }

    /// Applies the §III-D untaint policy to the collected peer timestamps.
    fn conclude_peer_round(&mut self, env: &mut dyn Env, responses: Vec<u64>) {
        if self.state != NodeStateTag::Tainted {
            return;
        }
        if responses.is_empty() {
            self.fall_back_to_ta(env);
            return;
        }
        let now = env.now();
        let ticks = env.read_tsc();
        let local_pre_interrupt =
            self.taint_snapshot_ns.expect("tainted state always has a snapshot");
        let best_peer = *responses.iter().max().expect("non-empty");

        if (best_peer as f64) > local_pre_interrupt {
            // "the incoming timestamp becomes the new reference"
            self.set_anchor(env, ticks, best_peer as f64);
            env.recorder().node_mut(self.index).peer_adoptions.increment(now);
        } else {
            // "the local timestamp is increased by the smallest possible
            // increment to ensure monotonicity"
            let own_now = self.clock_ns(ticks).expect("clock was valid before the taint");
            if own_now <= local_pre_interrupt {
                self.set_anchor(env, ticks, local_pre_interrupt + self.cfg.epsilon_ns as f64);
            }
        }
        env.recorder().node_mut(self.index).peer_untaints.increment(now);
        self.taint_snapshot_ns = None;
        self.enter_state(env, NodeStateTag::Ok);
    }

    fn fall_back_to_ta(&mut self, env: &mut dyn Env) {
        self.enter_state(env, NodeStateTag::RefCalib);
        self.send_probe(env, None);
    }

    // ------------------------------------------------------------------
    // Crash / recovery (fault injection)
    // ------------------------------------------------------------------

    /// The platform goes down: all enclave state is lost. Only
    /// `last_served_ns` survives — Triad seals the monotonic serving floor
    /// outside the enclave, so a rebooted node can never serve a timestamp
    /// below one it already handed out.
    fn on_crash(&mut self, env: &mut dyn Env) {
        if self.crashed {
            return;
        }
        self.crashed = true;
        self.timer_epoch += 1; // orphan every timer chain armed pre-crash
        self.abandon_probe(env);
        self.abandon_peer_round(env);
        self.calibrator.reset();
        self.f_calib_hz = None;
        self.clock_valid = false;
        self.taint_snapshot_ns = None;
        self.resume_pending = false;
        self.aex_count = 0;
        self.monitor_anchor = None;
        self.inc_ticks_per_inc = None;
        self.probe_failures = 0;
        self.breaker_open = false;
        self.breaker_stage = None;
        self.publish_clock(env);
        let now = env.now();
        env.recorder().node_mut(self.index).crashes.increment(now);
        self.enter_state(env, NodeStateTag::Crashed);
    }

    /// The platform boots again: the node must re-earn a clock through a
    /// full calibration before serving anything.
    fn on_restart(&mut self, env: &mut dyn Env) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        self.begin_full_calibration(env);
        self.schedule_monitor(env);
    }

    fn monitor_token(&self) -> u64 {
        TOKEN_MONITOR | (self.timer_epoch & TOKEN_MASK)
    }

    fn schedule_monitor(&mut self, env: &mut dyn Env) {
        env.set_timer(self.monitor_token(), self.cfg.monitor_interval);
    }

    // ------------------------------------------------------------------
    // INC monitoring (§IV-A.1)
    // ------------------------------------------------------------------

    fn on_monitor_tick(&mut self, env: &mut dyn Env) {
        let now = env.now();
        let ticks_now = env.read_tsc();
        if let Some((t0, ticks0)) = self.monitor_anchor {
            // Only windows with uninterrupted execution count; AEXs clear
            // the anchor.
            let wall = now - t0;
            if !wall.is_zero() {
                let inc = env.sample_inc(wall);
                if inc > 0 {
                    let tsc_delta = ticks_now.saturating_sub(ticks0);
                    let ratio = tsc_delta as f64 / inc as f64;
                    match self.inc_ticks_per_inc {
                        None => self.inc_ticks_per_inc = Some(ratio),
                        Some(baseline) => {
                            let ppm = (ratio / baseline - 1.0).abs() * 1e6;
                            if ppm > self.cfg.monitor_threshold_ppm {
                                self.monitor_detections += 1;
                                env.recorder()
                                    .node_mut(self.index)
                                    .monitor_detections
                                    .increment(now);
                                self.inc_ticks_per_inc = None;
                                self.monitor_anchor = Some((now, ticks_now));
                                self.schedule_monitor(env);
                                self.begin_full_calibration(env);
                                return;
                            }
                        }
                    }
                }
            }
        }
        self.monitor_anchor = Some((now, ticks_now));
        self.schedule_monitor(env);
    }

    // ------------------------------------------------------------------
    // Graceful degradation (staleness-aware readings)
    // ------------------------------------------------------------------

    /// Self-assessed uncertainty half-width: the configured floor, widened
    /// linearly with staleness while the node is degraded.
    fn reading_uncertainty_ns(&self, now: SimTime) -> u64 {
        let mut u = self.cfg.reading_uncertainty_ns as f64;
        if let Some(t0) = self.degraded_since {
            u += self.cfg.reading_drift_ppm * 1e-6 * (now - t0).as_nanos() as f64;
        }
        u as u64
    }

    /// Serves a degraded-tolerant reading: unlike the all-or-nothing
    /// client API, a Tainted or recalibrating node keeps answering with a
    /// monotonic estimate and an honestly widening uncertainty bound.
    fn serve_reading(&mut self, env: &mut dyn Env) -> Option<wire::TimeReading> {
        let now = env.now();
        let ticks = env.read_tsc();
        let estimate_ns = self.serve_ns(ticks)?;
        let uncertainty_ns = self.reading_uncertainty_ns(now);
        env.recorder().node_mut(self.index).reading_uncertainty_ns.push(now, uncertainty_ns as f64);
        Some(wire::TimeReading {
            estimate_ns,
            uncertainty_ns,
            degraded: self.state != NodeStateTag::Ok,
        })
    }

    // ------------------------------------------------------------------
    // Message dispatch
    // ------------------------------------------------------------------

    fn on_message(&mut self, env: &mut dyn Env, from: Addr, msg: Message) {
        match msg {
            Message::CalibrationResponse { nonce, ta_time_ns, .. } if from == TA_ADDR => {
                self.on_calibration_response(env, nonce, ta_time_ns);
            }
            Message::PeerTimeRequest { nonce } if self.state == NodeStateTag::Ok => {
                let ticks = env.read_tsc();
                if let Some(ts) = self.serve_ns(ticks) {
                    env.send(from, &Message::PeerTimeResponse { nonce, timestamp_ns: ts });
                }
            }
            // Tainted/calibrating nodes stay silent (§III-D).
            Message::PeerTimeResponse { nonce, timestamp_ns } => {
                self.on_peer_response(env, nonce, timestamp_ns);
            }
            Message::ClientTimeRequest { nonce } => {
                let timestamp_ns = if self.state == NodeStateTag::Ok {
                    let ticks = env.read_tsc();
                    self.serve_ns(ticks)
                } else {
                    None
                };
                env.send(from, &Message::ClientTimeResponse { nonce, timestamp_ns });
            }
            Message::TimeReadingRequest { nonce } => {
                let reading = self.serve_reading(env);
                env.send(from, &Message::TimeReadingResponse { nonce, reading });
            }
            // Hardened-protocol messages are ignored by the base node.
            _ => {}
        }
    }
}

impl Machine for TriadNode {
    fn addr(&self) -> Addr {
        self.me
    }

    fn node_index(&self) -> Option<usize> {
        Some(self.index)
    }

    fn crashed(&self) -> bool {
        self.crashed
    }

    fn on_start(&mut self, env: &mut dyn Env) {
        let now = env.now();
        env.recorder().node_mut(self.index).states.enter(now, NodeStateTag::FullCalib);
        self.begin_full_calibration(env);
        self.schedule_monitor(env);
    }

    fn on_input(&mut self, env: &mut dyn Env, input: Input) {
        match input {
            Input::Aex { .. } => self.on_aex(env),
            Input::AexResume => self.on_resume(env),
            Input::Crash => self.on_crash(env),
            Input::Restart => self.on_restart(env),
            Input::Message { src, msg } => self.on_message(env, src, msg),
            Input::Timer { token } => {
                if token & TOKEN_MONITOR != 0 {
                    if token & TOKEN_MASK == self.timer_epoch & TOKEN_MASK {
                        self.on_monitor_tick(env);
                    }
                    // Stale chains from before a crash die out silently.
                } else if token & TOKEN_BREAKER != 0 {
                    if token & TOKEN_MASK == self.timer_epoch & TOKEN_MASK {
                        self.on_breaker_timer(env);
                    }
                } else if token & TOKEN_PEER_TIMEOUT != 0 {
                    self.on_peer_timeout(env, token & TOKEN_MASK);
                } else if token & TOKEN_PROBE_RETRY != 0 {
                    let nonce = token & TOKEN_MASK;
                    if let Some(probe) = self.pending_probe {
                        if probe.nonce == nonce {
                            // Response lost (attacker-dropped, or the TA is
                            // down): retry under the backoff schedule.
                            self.on_probe_timeout(env, probe.sleep_idx, probe.attempt);
                        }
                    }
                }
            }
        }
    }
}
