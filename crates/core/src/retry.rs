//! Bounded retry with exponential backoff, and a circuit breaker for a
//! repeatedly unreachable Time Authority.
//!
//! The policies themselves live in [`proto`] so the exact same types (and
//! therefore the exact same retry schedules and replay-protection
//! behaviour) compile into both the simulation driver and the live UDP
//! runtime; this module re-exports them under their historical paths.

pub use proto::{CircuitBreakerPolicy, RetryPolicy};
