//! # triad-core — the Triad TEE trusted-time protocol
//!
//! An open implementation of Triad (Fernandez, Brito, Fetzer, CloudCom'23)
//! as specified and analysed by the reproduced paper. A cluster of enclave
//! nodes cooperates to keep a common, continuous notion of time:
//!
//! - each node **calibrates** its TSC frequency against a remote Time
//!   Authority by regressing TSC increments over round-trips with
//!   controlled TA hold times ([`Calibrator`], §III-C);
//! - an in-enclave monitoring thread counts INC instructions to detect TSC
//!   manipulation, and AEX-Notify makes interruptions (AEXs) observable:
//!   every AEX **taints** the timestamp (§III-B);
//! - a tainted node asks its **peers** for a fresh timestamp; a higher peer
//!   timestamp is adopted, a lower one is answered by an ε-bump of the
//!   local clock — so the cluster follows its fastest clock (§III-D);
//! - only when no peer answers does the node fall back to the TA
//!   (RefCalib).
//!
//! [`TriadNode`] is the actor implementing all of this over the `runtime`
//! composition layer; experiments attack it via `netsim` interceptors
//! without touching protocol code.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod calib;
mod config;
mod node;
mod retry;

pub use calib::Calibrator;
pub use config::TriadConfig;
pub use node::TriadNode;
pub use retry::{CircuitBreakerPolicy, RetryPolicy};
