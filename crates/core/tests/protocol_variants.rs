//! Protocol-configuration variants: behaviours the default experiments
//! don't exercise.

use authority::TimeAuthority;
use harness::ClusterBuilder;
use netsim::{Addr, DelayModel, Network};
use runtime::{EnvDriver, Host, MachineActor, Sampler, World};
use sim::{SimDuration, SimTime, Simulation};
use triad_core::{TriadConfig, TriadNode};
use tsc::{TriadLike, PAPER_TSC_HZ};

/// A single-node "cluster" has no peers: every AEX must fall back to the
/// TA (the degenerate case §III-B's clustering exists to avoid).
#[test]
fn single_node_cluster_depends_entirely_on_the_ta() {
    let mut s = ClusterBuilder::new(1, 51).all_nodes_aex(|| Box::new(TriadLike::default())).build();
    s.run_until(SimTime::from_secs(60));
    let w = s.world();
    let trace = w.recorder.node(0);
    assert_eq!(trace.peer_untaints.count(), 0, "no peers exist");
    let aex = trace.aex_events.count();
    assert!(aex > 40, "AEXs happened: {aex}");
    // Every resolved taint is one TA reference (plus the initial one).
    assert!(
        trace.ta_references.count() > aex / 2,
        "TA references {} for {aex} AEXs",
        trace.ta_references.count()
    );
    // Availability suffers relative to a cluster: each taint costs a full
    // TA round-trip instead of a fast peer exchange — but stays high on a
    // LAN.
    let avail = trace.states.availability(SimTime::from_secs(30), SimTime::from_secs(60));
    assert!(avail > 0.9, "availability {avail}");
}

/// A multi-point sleep schedule (more x-values in the regression) still
/// calibrates correctly.
#[test]
fn multi_point_sleep_schedule_calibrates() {
    let cfg = TriadConfig {
        calib_sleeps: vec![
            SimDuration::ZERO,
            SimDuration::from_millis(250),
            SimDuration::from_millis(500),
            SimDuration::from_secs(1),
        ],
        samples_per_sleep: 2,
        ..Default::default()
    };
    let mut s = ClusterBuilder::new(3, 52).config(cfg).build();
    s.run_until(SimTime::from_secs(60));
    let w = s.world();
    for i in 0..3 {
        let f = w.recorder.node(i).latest_calibrated_hz().unwrap();
        let ppm = stats::freq_error_ppm(f, PAPER_TSC_HZ).abs();
        assert!(ppm < 1_000.0, "node {i} calibrated to {f} ({ppm} ppm)");
    }
}

/// Security analysis beyond the paper: changing the sleep schedule does
/// NOT mitigate F– — it can *amplify* it. The slope tilt of a delay `d`
/// applied to the below-threshold probes scales with
/// `d · Σ(x_i<θ)(x̄−x_i) / Σ(x−x̄)²`, i.e. inversely with the schedule's
/// x-variance. A 4-point schedule spanning the same 1 s has less variance
/// than the paper's {0 s, 1 s}, so the same 100 ms delay buys the attacker
/// *more* drift; a tight {0.4 s, 0.6 s} schedule is catastrophically
/// worse (tilt d/0.2 = 5× the two-point case). Wide spacing is part of
/// the defence.
#[test]
fn tighter_sleep_schedules_amplify_f_minus() {
    use attacks::{CalibrationDelayAttack, DelayAttackMode};
    let run = |sleeps: Vec<SimDuration>, samples: usize, seed: u64| -> f64 {
        let cfg =
            TriadConfig { calib_sleeps: sleeps, samples_per_sleep: samples, ..Default::default() };
        let mut s = ClusterBuilder::new(3, seed)
            .config(cfg)
            .interceptor(Box::new(CalibrationDelayAttack::paper_default(
                Addr(3),
                World::TA_ADDR,
                DelayAttackMode::FMinus,
            )))
            .build();
        s.run_until(SimTime::from_secs(120));
        s.world()
            .recorder
            .node(2)
            .drift_ms
            .slope_per_sec_in(SimTime::from_secs(40), SimTime::from_secs(120))
            .unwrap()
    };
    let paper_schedule = run(vec![SimDuration::ZERO, SimDuration::from_secs(1)], 3, 53);
    let four_point = run(
        vec![
            SimDuration::ZERO,
            SimDuration::from_millis(300),
            SimDuration::from_millis(700),
            SimDuration::from_secs(1),
        ],
        2,
        53,
    );
    let tight = run(vec![SimDuration::from_millis(400), SimDuration::from_millis(600)], 3, 53);
    assert!((paper_schedule - 111.0).abs() < 5.0, "paper schedule {paper_schedule} ms/s");
    // Analytic prediction for the 4-point schedule: slope factor
    // 1 − d·(0.5+0.2)/1.16·2/2 = 0.8793 → +137 ms/s.
    assert!(
        (four_point - 137.0).abs() < 8.0,
        "4-point schedule amplifies to ≈137 ms/s, got {four_point}"
    );
    // Tight schedule: slope factor 1 − 0.1/0.2 = 0.5 → +1000 ms/s.
    assert!(tight > 900.0, "tight schedule is catastrophic (≈ +1000 ms/s), got {tight}");
}

/// Without the RTT/2 correction the time-reference anchor sits one-way-
/// delay in the past: the drift right after calibration is negative by
/// about the one-way delay.
#[test]
fn disabling_rtt_correction_biases_the_anchor_into_the_past() {
    let run = |rtt_half_correction: bool, seed: u64| -> f64 {
        let delay = DelayModel::Constant(SimDuration::from_millis(2));
        let cfg = TriadConfig { rtt_half_correction, ..Default::default() };
        let mut s = ClusterBuilder::new(3, seed).delay(delay).config(cfg).build();
        s.run_until(SimTime::from_secs(20));
        // First drift sample after calibration.
        s.world().recorder.node(0).drift_ms.points()[0].1
    };
    let corrected = run(true, 54);
    let uncorrected = run(false, 54);
    // With a constant 2 ms one-way delay the uncorrected anchor lags ~2 ms.
    assert!(corrected.abs() < 1.0, "corrected initial drift {corrected} ms");
    assert!(
        (uncorrected + 2.0).abs() < 1.0,
        "uncorrected initial drift {uncorrected} ms (expect ≈ −2 ms)"
    );
}

/// The probe-retry path: a TA that silently loses every first request
/// still gets calibrated against, just slower.
#[test]
fn calibration_survives_heavy_request_loss() {
    let mut s = ClusterBuilder::new(2, 55).loss(0.25).build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    for i in 0..2 {
        assert!(
            w.recorder.node(i).latest_calibrated_hz().is_some(),
            "node {i} must calibrate through 25% loss"
        );
    }
    // The run sends ~44 messages, so the lost count is Binomial(44, 0.25):
    // mean 11, σ≈2.9. Assert a 2σ floor — loss was genuinely exercised —
    // rather than a knife-edge at the mean.
    assert!(w.net.total_stats().lost > 5);
}

/// Stale peer responses (arriving after their round timed out) are
/// ignored rather than corrupting a later round — exercised by an extreme
/// peer timeout shorter than the network round-trip.
#[test]
fn stale_peer_responses_are_ignored() {
    let cfg = TriadConfig {
        // Timeout far below the ~60 µs round-trip forces every peer round
        // to expire before responses arrive.
        peer_timeout: SimDuration::from_micros(10),
        ..Default::default()
    };
    let mut s = ClusterBuilder::new(3, 56)
        .config(cfg)
        .all_nodes_aex(|| Box::new(TriadLike::default()))
        .build();
    s.run_until(SimTime::from_secs(60));
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        // All taints resolve through the TA (peer rounds always time out),
        // and late responses never break the state machine.
        assert_eq!(trace.peer_adoptions.count(), 0, "node {i} adopted a stale response");
        assert!(trace.ta_references.count() > 5, "node {i} fell back to the TA");
        assert_eq!(
            trace.states.state_at(SimTime::from_secs(59)).map(|s| s.is_available()),
            Some(true),
            "node {i} ends the run serving"
        );
    }
}

/// Two differently-built simulations with manual wiring (not the harness)
/// interoperate — guards the public API surface used by downstream code.
#[test]
fn manual_wiring_without_the_harness_works() {
    let net = Network::new(DelayModel::lan_default(), 0.0);
    let mut world = World::new(net, vec![Host::paper_default(), Host::paper_default()]);
    world.provision_all_keys(57);
    let mut s = Simulation::new(world, 57);
    let ta = s.add_actor(Box::new(TimeAuthority::new()));
    let n1 = s.add_actor(Box::new(MachineActor::new(TriadNode::new(
        Addr(1),
        vec![Addr(2)],
        TriadConfig::default(),
    ))));
    let n2 = s.add_actor(Box::new(MachineActor::new(TriadNode::new(
        Addr(2),
        vec![Addr(1)],
        TriadConfig::default(),
    ))));
    s.add_actor(Box::new(EnvDriver::new(
        vec![n1, n2],
        vec![Some(Box::new(TriadLike::default())), Some(Box::new(TriadLike::default()))],
        None,
    )));
    s.add_actor(Box::new(Sampler { interval: SimDuration::from_secs(1) }));
    s.world_mut().register_actor(World::TA_ADDR, ta);
    s.world_mut().register_actor(Addr(1), n1);
    s.world_mut().register_actor(Addr(2), n2);
    s.run_until(SimTime::from_secs(30));
    assert!(s.world().recorder.node(0).latest_calibrated_hz().is_some());
    assert!(s.world().recorder.node(1).peer_untaints.count() > 0);
}
