//! End-to-end cluster tests: three Triad nodes and a Time Authority over
//! the sealed network fabric, exercising the fault-free behaviour of
//! §IV-A.

use authority::TimeAuthority;
use netsim::{Addr, DelayModel, Network};
use runtime::{EnvDriver, Host, MachineActor, Sampler, SysEvent, World};
use sim::{SimDuration, SimTime, Simulation};
use trace::NodeStateTag;
use triad_core::{TriadConfig, TriadNode};
use tsc::{AexModel, IsolatedCore, Periodic, TriadLike};

type AexSlots = Vec<Option<Box<dyn AexModel>>>;

fn build_cluster(
    n: usize,
    seed: u64,
    per_node_aex: AexSlots,
    machine_aex: Option<Box<dyn AexModel>>,
) -> Simulation<World, SysEvent> {
    assert_eq!(per_node_aex.len(), n);
    let net = Network::new(DelayModel::lan_default(), 0.0);
    let mut world = World::new(net, (0..n).map(|_| Host::paper_default()).collect());
    world.provision_all_keys(seed);

    let mut s = Simulation::new(world, seed);
    let ta = s.add_actor(Box::new(TimeAuthority::new()));
    let mut node_ids = Vec::new();
    for i in 0..n {
        let me = World::node_addr(i);
        let peers: Vec<Addr> = (0..n).filter(|&j| j != i).map(World::node_addr).collect();
        let node = MachineActor::new(TriadNode::new(me, peers, TriadConfig::default()));
        node_ids.push(s.add_actor(Box::new(node)));
    }
    s.add_actor(Box::new(EnvDriver::new(node_ids.clone(), per_node_aex, machine_aex)));
    s.add_actor(Box::new(Sampler { interval: SimDuration::from_millis(250) }));

    s.world_mut().register_actor(World::TA_ADDR, ta);
    for (i, &id) in node_ids.iter().enumerate() {
        s.world_mut().register_actor(World::node_addr(i), id);
    }
    s
}

#[test]
fn quiet_cluster_calibrates_once_and_tracks_reference() {
    // No AEXs at all: every node full-calibrates exactly once, reaches OK,
    // and then free-runs on its calibrated clock.
    let mut s = build_cluster(3, 42, vec![None, None, None], None);
    s.run_until(SimTime::from_secs(60));
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        assert_eq!(trace.calibrations_hz.len(), 1, "node {i} calibrated once");
        let f = trace.latest_calibrated_hz().unwrap();
        let err_ppm = stats::freq_error_ppm(f, tsc::PAPER_TSC_HZ);
        assert!(err_ppm.abs() < 500.0, "node {i} calibration error {err_ppm} ppm (f = {f})");
        assert_eq!(trace.ta_references.count(), 1, "one reference anchor");
        // Drift after 60 s of free-running stays below 60 s × 500 ppm = 30 ms.
        let (_, last_drift) = trace.drift_ms.last().expect("sampled");
        assert!(last_drift.abs() < 30.0, "node {i} drift {last_drift} ms");
        // The node ended in OK and was available most of the run.
        assert_eq!(trace.states.state_at(SimTime::from_secs(59)), Some(NodeStateTag::Ok));
        let avail = trace.states.availability(SimTime::ZERO, SimTime::from_secs(60));
        assert!(avail > 0.8, "node {i} availability {avail}");
    }
}

#[test]
fn calibration_error_matches_papers_effective_drift_band() {
    // §IV-A.2: effective drift-rates around 110–210 ppm, an order of
    // magnitude above NTP's 15 ppm bound, caused by short-duration
    // calibration measurements. Check the error lands in a plausible band:
    // clearly worse than NTP, clearly better than 1000 ppm.
    let mut worst: f64 = 0.0;
    for seed in [1, 2, 3, 4, 5] {
        let mut s = build_cluster(3, seed, vec![None, None, None], None);
        s.run_until(SimTime::from_secs(30));
        for i in 0..3 {
            let f = s.world().recorder.node(i).latest_calibrated_hz().unwrap();
            worst = worst.max(stats::freq_error_ppm(f, tsc::PAPER_TSC_HZ).abs());
        }
    }
    assert!(worst > 15.0, "short-window calibration should beat NTP's bound: {worst} ppm");
    assert!(worst < 1000.0, "calibration error unexpectedly large: {worst} ppm");
}

#[test]
fn triad_like_aex_cluster_stays_available_and_bounded() {
    let per_node: AexSlots =
        (0..3).map(|_| Some(Box::new(TriadLike::default()) as Box<dyn AexModel>)).collect();
    // Machine-wide correlated AEXs every ~90 s force TA re-anchoring.
    let mut s = build_cluster(
        3,
        7,
        per_node,
        Some(Box::new(Periodic { period: SimDuration::from_secs(90) })),
    );
    let horizon = SimTime::from_secs(300);
    s.run_until(horizon);
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        // Plenty of AEXs: roughly one per 0.71 s.
        let aex = trace.aex_events.count();
        assert!(aex > 200, "node {i} saw only {aex} AEXs");
        // Machine-wide AEXs forced more than the initial TA reference.
        assert!(
            trace.ta_references.count() >= 3,
            "node {i} TA references {}",
            trace.ta_references.count()
        );
        // Peer untainting carried the bulk of the AEXs.
        assert!(
            trace.peer_untaints.count() > aex / 2,
            "node {i} untaints {} of {aex} AEXs",
            trace.peer_untaints.count()
        );
        // Availability ≥ 98% including initial calibration (§IV-A.2).
        let avail = trace.states.availability(SimTime::ZERO, horizon);
        assert!(avail > 0.9, "node {i} availability {avail}");
        // Drift stays bounded (no attack): well under 50 ms at all times.
        let (lo, hi) = trace.drift_ms.value_range().unwrap();
        assert!(lo > -50.0 && hi < 50.0, "node {i} drift range [{lo}, {hi}] ms");
    }
}

#[test]
fn tainted_node_recovers_via_peer_timestamps() {
    // Node 1 is on a perfectly isolated core; nodes 2 and 3 see Triad-like
    // AEXs. After the initial calibration, nodes 2 and 3 should resolve
    // (almost) all taints through node 1 without returning to the TA.
    let per_node: AexSlots =
        vec![None, Some(Box::new(TriadLike::default())), Some(Box::new(TriadLike::default()))];
    let mut s = build_cluster(3, 11, per_node, None);
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    for i in [1usize, 2] {
        let trace = w.recorder.node(i);
        assert!(trace.peer_untaints.count() > 50, "node {i} peer untaints");
        assert_eq!(
            trace.ta_references.count(),
            1,
            "node {i} should never need the TA after initial calibration"
        );
    }
    // Node 1 never tainted, so it saw no AEX and served many peers.
    assert_eq!(w.recorder.node(0).aex_events.count(), 0);
}

#[test]
fn simultaneous_machine_wide_aex_forces_ta_recalibration() {
    // Only machine-wide AEXs: every taint is simultaneous, peer untainting
    // must always fail (everyone tainted), so every AEX costs one TA
    // reference per node — the Figure 2a sawtooth mechanism.
    let per_node: AexSlots = vec![None, None, None];
    let mut s = build_cluster(
        3,
        13,
        per_node,
        Some(Box::new(Periodic { period: SimDuration::from_secs(30) })),
    );
    s.run_until(SimTime::from_secs(125));
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        // Initial reference + one per machine-wide AEX (t = 30, 60, 90, 120)
        // modulo AEXs that land during the initial calibration window.
        assert!(
            trace.ta_references.count() >= 4,
            "node {i} TA references {}",
            trace.ta_references.count()
        );
        assert_eq!(
            trace.peer_adoptions.count(),
            0,
            "no peer can ever answer when all taint together"
        );
    }
}

#[test]
fn low_aex_environment_gives_three_nines_availability() {
    // Figure 3's environment: isolated cores, AEXs ~5.4 minutes apart.
    let per_node: AexSlots =
        (0..3).map(|_| Some(Box::new(IsolatedCore::default()) as Box<dyn AexModel>)).collect();
    let mut s = build_cluster(3, 17, per_node, None);
    let horizon = SimTime::from_secs(3600);
    s.run_until(horizon);
    let w = s.world();
    for i in 0..3 {
        let trace = w.recorder.node(i);
        // Skip the initial calibration when judging steady-state
        // availability, as the paper's 99.9% is for the long run.
        let steady_from = SimTime::from_secs(60);
        let avail = trace.states.availability(steady_from, horizon);
        assert!(avail > 0.999, "node {i} steady availability {avail}");
        assert_eq!(trace.calibrations_hz.len(), 1, "single full calibration");
    }
}
