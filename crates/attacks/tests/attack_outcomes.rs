//! End-to-end attack reproductions: the headline numbers of §IV-B.

use attacks::{CalibrationDelayAttack, DelayAttackMode, PlannedManipulation, TscAttackSchedule};
use harness::ClusterBuilder;
use netsim::Addr;
use runtime::World;
use sim::{SimDuration, SimTime};
use tsc::{IsolatedCore, SwitchAt, TriadLike, TscManipulation, PAPER_TSC_HZ};

const NODE3: Addr = Addr(3);

/// §IV-B.1 / Fig. 4: F+ with the victim on an isolated core. The paper
/// reports `F_3^calib ≈ 3191 MHz` (≈ 1.1 × F^TSC) and a drift of
/// −91 ms/s.
#[test]
fn f_plus_slows_victim_clock_by_91ms_per_s() {
    let mut s = ClusterBuilder::new(3, 101)
        .node_aex(0, Box::new(TriadLike::default()))
        .node_aex(1, Box::new(TriadLike::default()))
        // Node 3's attacker additionally isolates its core (low AEX).
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FPlus,
        )))
        .build();
    s.run_until(SimTime::from_secs(180));
    let w = s.world();

    let f3 = w.recorder.node(2).latest_calibrated_hz().unwrap();
    let ratio = f3 / PAPER_TSC_HZ;
    assert!((ratio - 1.1).abs() < 0.002, "F3_calib/F_TSC = {ratio} (expect ≈1.1)");

    // Drift rate measured over a window after calibration has settled.
    let slope = w
        .recorder
        .node(2)
        .drift_ms
        .slope_per_sec_in(SimTime::from_secs(60), SimTime::from_secs(180))
        .unwrap();
    assert!((slope + 91.0).abs() < 2.0, "victim drift {slope} ms/s (expect ≈ −91)");

    // Honest nodes keep their ordinary sub-ms/s drift.
    for i in [0usize, 1] {
        let f = w.recorder.node(i).latest_calibrated_hz().unwrap();
        assert!(
            stats::freq_error_ppm(f, PAPER_TSC_HZ).abs() < 500.0,
            "honest node {i} calibration"
        );
    }
}

/// §IV-B.2 / Fig. 6 setup: F– gives `F_3^calib ≈ 2610 MHz`
/// (≈ 0.9 × F^TSC) and +113 ms/s of positive drift.
#[test]
fn f_minus_speeds_victim_clock_by_111ms_per_s() {
    let mut s = ClusterBuilder::new(3, 102)
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
        )))
        .build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();

    let f3 = w.recorder.node(2).latest_calibrated_hz().unwrap();
    let ratio = f3 / PAPER_TSC_HZ;
    assert!((ratio - 0.9).abs() < 0.002, "F3_calib/F_TSC = {ratio} (expect ≈0.9)");

    let slope = w
        .recorder
        .node(2)
        .drift_ms
        .slope_per_sec_in(SimTime::from_secs(40), SimTime::from_secs(120))
        .unwrap();
    assert!((slope - 111.0).abs() < 3.0, "victim drift {slope} ms/s (expect ≈ +111)");
}

/// §IV-B.2 / Fig. 6: the F– attack *propagates*. Honest nodes on quiet
/// cores track the reference fine — until they start experiencing AEXs
/// (t ≥ 104 s), talk to the compromised fast node, and jump forward.
#[test]
fn f_minus_propagates_forward_time_jumps_to_honest_nodes() {
    let switch = SimTime::from_secs(104);
    let honest_env = || {
        Box::new(SwitchAt {
            at: switch,
            before: Box::new(IsolatedCore::default()),
            after: Box::new(TriadLike::default()),
        })
    };
    let mut s = ClusterBuilder::new(3, 103)
        .node_aex(0, honest_env())
        .node_aex(1, honest_env())
        .node_aex(2, Box::new(TriadLike::default()))
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
        )))
        .build();
    s.run_until(SimTime::from_secs(420));
    let w = s.world();

    for i in [0usize, 1] {
        let trace = w.recorder.node(i);
        // Before the switch: drift stays small (honest calibration error
        // over <100 s is well under 100 ms).
        let before = trace
            .drift_ms
            .window(SimTime::from_secs(40), SimTime::from_secs(100))
            .iter()
            .map(|&(_, d)| d.abs())
            .fold(0.0f64, f64::max);
        assert!(before < 100.0, "node {i} pre-switch drift {before} ms");

        // After the switch: adopted timestamps from the fast node ratchet
        // the clock far into the future.
        let (_, final_drift) = trace.drift_ms.last().unwrap();
        assert!(
            final_drift > 1_000.0,
            "node {i} final drift {final_drift} ms — the infection must show seconds of skip"
        );

        // The jumps came from peer adoptions, which only start post-switch.
        let adoptions_before = trace.peer_adoptions.count_at(switch);
        let adoptions_after = trace.peer_adoptions.count() - adoptions_before;
        assert!(adoptions_after > 10, "node {i} post-switch adoptions {adoptions_after}");

        // And the AEX counter shows the regime change (Fig. 6b).
        let aex_before = trace.aex_events.count_at(switch);
        let aex_after = trace.aex_events.count() - aex_before;
        assert!(aex_before <= 2, "node {i} pre-switch AEXs {aex_before}");
        assert!(aex_after > 100, "node {i} post-switch AEXs {aex_after}");
    }

    // The infection cascades: honest nodes' drift keeps growing at roughly
    // the attacker's rate after the switch.
    let late_slope = w
        .recorder
        .node(0)
        .drift_ms
        .slope_per_sec_in(SimTime::from_secs(150), SimTime::from_secs(420))
        .unwrap();
    assert!(
        late_slope > 50.0,
        "honest cluster should follow the fast clock, got {late_slope} ms/s"
    );
}

/// F+ with the victim's core isolated (the paper notes *removing*
/// interrupts strengthens the attack): no AEXs at the victim means no peer
/// corrections at all, so the −91 ms/s drift runs unbounded.
#[test]
fn aex_suppression_lets_f_plus_drift_unbounded() {
    let mut s = ClusterBuilder::new(3, 104)
        .node_aex(0, Box::new(TriadLike::default()))
        .node_aex(1, Box::new(TriadLike::default()))
        // Node 3: no AEX model at all — perfectly isolated core.
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FPlus,
        )))
        .build();
    s.run_until(SimTime::from_secs(300));
    let w = s.world();
    let trace = w.recorder.node(2);
    // No AEX → no taint → no peer correction, ever.
    assert_eq!(trace.aex_events.count(), 0);
    assert_eq!(trace.peer_untaints.count(), 0);
    let (_, final_drift) = trace.drift_ms.last().unwrap();
    // ~270 s of free-running at −91 ms/s ≈ −25 s.
    assert!(final_drift < -20_000.0, "unbounded negative drift, got {final_drift} ms");
    // Availability is *perfect* for the victim (§IV-B: "these attacks do
    // not negatively affect availability").
    let avail = trace.states.availability(SimTime::from_secs(60), SimTime::from_secs(300));
    assert!(avail > 0.9999, "victim availability {avail}");
}

/// With Triad-like AEXs at the victim (Fig. 5), peer untainting bounds the
/// F+ drift: the victim oscillates between its peers' drift and its own
/// slow clock's accumulation over one inter-AEX gap (paper: down to
/// −150 ms before the next AEX).
#[test]
fn f_plus_with_aex_oscillates_between_peer_resets_and_slow_clock() {
    let mut s = ClusterBuilder::new(3, 105)
        .all_nodes_aex(|| Box::new(TriadLike::default()))
        .interceptor(Box::new(CalibrationDelayAttack::paper_default(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FPlus,
        )))
        .build();
    s.run_until(SimTime::from_secs(240));
    let w = s.world();
    let trace = w.recorder.node(2);

    // The victim adopts peer timestamps regularly (its slow clock is
    // always behind its peers after an interrupt).
    assert!(trace.peer_adoptions.count() > 50, "adoptions {}", trace.peer_adoptions.count());

    // Post-calibration drift stays within the oscillation band: bounded
    // below by ≈ −(longest AEX gap × 91 ms/s) ≈ −150 ms, and never far
    // above the honest nodes' drift.
    let band = trace.drift_ms.window(SimTime::from_secs(60), SimTime::from_secs(240));
    let min = band.iter().map(|&(_, d)| d).fold(f64::INFINITY, f64::min);
    let max = band.iter().map(|&(_, d)| d).fold(f64::NEG_INFINITY, f64::max);
    assert!(min > -400.0, "oscillation floor {min} ms (expect ≳ −150 ms minus peer drift)");
    assert!(min < -80.0, "victim must visibly lag between AEXs, floor {min} ms");
    assert!(max < 50.0, "victim never runs far ahead, ceiling {max} ms");
}

/// E13: the INC monitor catches hypervisor TSC manipulation and triggers
/// a full recalibration (RQ A.1's detection claim).
#[test]
fn inc_monitor_detects_tsc_rate_manipulation() {
    let mut s = ClusterBuilder::new(3, 106)
        .extra_actor(Box::new(TscAttackSchedule::new(vec![PlannedManipulation {
            at: SimTime::from_secs(60),
            victim: NODE3,
            manipulation: TscManipulation::ScaleRate(1.001), // +1000 ppm
        }])))
        .build();
    s.run_until(SimTime::from_secs(150));
    let w = s.world();
    let trace = w.recorder.node(2);

    // The node recalibrated after the manipulation.
    assert!(
        trace.calibrations_hz.len() >= 2,
        "expected recalibration, got {:?}",
        trace.calibrations_hz
    );
    let (when, f_new) = *trace.calibrations_hz.last().unwrap();
    assert!(when > SimTime::from_secs(60), "recalibration after the manipulation");
    // The new fit tracks the *new* effective rate, restoring correctness.
    let expected = PAPER_TSC_HZ * 1.001;
    assert!(
        stats::freq_error_ppm(f_new, expected).abs() < 500.0,
        "recalibrated to {f_new}, expected ≈ {expected}"
    );
    // Honest nodes did not recalibrate.
    assert_eq!(w.recorder.node(0).calibrations_hz.len(), 1);

    // End-state drift is back under control (< 50 ms).
    let (_, final_drift) = trace.drift_ms.last().unwrap();
    assert!(final_drift.abs() < 50.0, "post-recovery drift {final_drift} ms");
}

/// E13 variant: a forward offset jump is likewise detected.
#[test]
fn inc_monitor_detects_tsc_offset_jump() {
    let jump_ticks = 29_000_000; // ≈ 10 ms of TSC progress injected at once
    let mut s = ClusterBuilder::new(3, 107)
        .extra_actor(Box::new(TscAttackSchedule::new(vec![PlannedManipulation {
            at: SimTime::from_secs(60),
            victim: NODE3,
            manipulation: TscManipulation::OffsetJump(jump_ticks),
        }])))
        .build();
    s.run_until(SimTime::from_secs(150));
    let w = s.world();
    let trace = w.recorder.node(2);
    assert!(
        trace.calibrations_hz.len() >= 2,
        "offset jump must trigger recalibration, got {:?}",
        trace.calibrations_hz
    );
}

/// The adaptive attacker: learns the 0 s/1 s calibration schedule from
/// timing alone during the initial calibration, then uses a TSC nudge to
/// force a recalibration — which it poisons without ever knowing the
/// protocol's parameters.
#[test]
fn adaptive_attacker_learns_schedule_and_poisons_recalibration() {
    use attacks::AdaptiveDelayAttack;
    let mut s = ClusterBuilder::new(3, 108)
        .interceptor(Box::new(AdaptiveDelayAttack::new(
            NODE3,
            World::TA_ADDR,
            DelayAttackMode::FMinus,
            SimDuration::from_millis(100),
            6,
        )))
        // Nudge the victim's TSC just enough to trip the INC monitor and
        // force a full recalibration at t = 60 s.
        .extra_actor(Box::new(TscAttackSchedule::new(vec![PlannedManipulation {
            at: SimTime::from_secs(60),
            victim: NODE3,
            manipulation: TscManipulation::ScaleRate(1.0005),
        }])))
        .build();
    s.run_until(SimTime::from_secs(200));
    let w = s.world();
    let trace = w.recorder.node(2);

    // The initial calibration happened before the attacker learned the
    // schedule, so the first fit is honest…
    let (_, f_first) = trace.calibrations_hz[0];
    assert!(
        stats::freq_error_ppm(f_first, PAPER_TSC_HZ).abs() < 1_000.0,
        "first calibration is clean: {f_first}"
    );
    // …but the forced recalibration is poisoned toward 0.9 × the (nudged)
    // rate.
    assert!(trace.calibrations_hz.len() >= 2, "recalibration must happen");
    let (_, f_second) = *trace.calibrations_hz.last().unwrap();
    let ratio = f_second / (PAPER_TSC_HZ * 1.0005);
    assert!((ratio - 0.9).abs() < 0.01, "recalibration poisoned to {ratio} x effective rate");
    // And the clock now runs fast.
    let slope =
        trace.drift_ms.slope_per_sec_in(SimTime::from_secs(80), SimTime::from_secs(200)).unwrap();
    assert!(slope > 80.0, "post-recalibration drift {slope} ms/s");
}

/// Dropping a victim's peer traffic removes peer untainting entirely:
/// every taint costs a TA round-trip (§III-A's drop capability).
#[test]
fn peer_isolation_forces_ta_dependence() {
    use attacks::{IsolationAttack, IsolationScope};
    let mut s = ClusterBuilder::new(3, 109)
        .all_nodes_aex(|| Box::new(TriadLike::default()))
        .interceptor(Box::new(IsolationAttack::new(
            NODE3,
            World::TA_ADDR,
            IsolationScope::PeersOnly,
        )))
        .build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    let victim = w.recorder.node(2);
    assert_eq!(victim.peer_untaints.count(), 0, "no peer ever reaches the victim");
    // Every taint fell back to the TA: references scale with AEXs.
    assert!(
        victim.ta_references.count() > victim.aex_events.count() / 2,
        "TA references {} vs AEXs {}",
        victim.ta_references.count(),
        victim.aex_events.count()
    );
    // Honest nodes keep untainting each other.
    assert!(w.recorder.node(0).peer_untaints.count() > 50);
    // The victim stays correct (the TA is honest) — isolation alone is not
    // a clock attack, it is groundwork for delay attacks and a DoS lever.
    let (lo, hi) = victim.drift_ms.value_range().unwrap();
    assert!(lo > -100.0 && hi < 100.0, "victim drift [{lo}, {hi}] ms");
}

/// Dropping *all* of the victim's traffic after calibration is a full
/// denial of service: the first AEX taints it forever.
#[test]
fn full_isolation_is_a_permanent_denial_of_service() {
    use attacks::{IsolationAttack, IsolationScope};
    use trace::NodeStateTag;
    // Let the cluster calibrate cleanly first, then cut node 3 off by
    // installing the interceptor from t=0 but giving node 3 no AEXs until
    // its environment starts at 30 s.
    let mut s = ClusterBuilder::new(3, 110)
        .node_aex(0, Box::new(TriadLike::default()))
        .node_aex(1, Box::new(TriadLike::default()))
        .node_aex(
            2,
            Box::new(SwitchAt {
                at: SimTime::from_secs(30),
                before: Box::new(tsc::Periodic { period: SimDuration::from_secs(3600) }),
                after: Box::new(TriadLike::default()),
            }),
        )
        .interceptor(Box::new(IsolationAttack::new(
            NODE3,
            World::TA_ADDR,
            IsolationScope::Everything,
        )))
        .build();
    s.run_until(SimTime::from_secs(120));
    let w = s.world();
    let victim = w.recorder.node(2);
    // The victim never calibrated (its TA traffic was dropped from t=0)…
    assert!(victim.latest_calibrated_hz().is_none(), "victim cannot even calibrate");
    // …and is permanently unavailable.
    let avail = victim.states.availability(SimTime::ZERO, SimTime::from_secs(120));
    assert_eq!(avail, 0.0, "victim availability {avail}");
    assert_ne!(victim.states.state_at(SimTime::from_secs(119)), Some(NodeStateTag::Ok));
    // Honest nodes are untouched.
    for i in [0usize, 1] {
        let t = w.recorder.node(i);
        assert!(t.states.availability(SimTime::from_secs(60), SimTime::from_secs(120)) > 0.95);
    }
}

/// Replayed datagrams are authentic (they decrypt and verify — they are
/// genuine messages), so the *protocol* must reject them: calibration
/// responses by nonce, peer timestamps by round bookkeeping, client
/// monotonicity by the serving contract. A cluster under heavy replay
/// must behave exactly like an unattacked one.
#[test]
fn replay_attack_changes_nothing_observable() {
    use attacks::{ReplayAttack, ReplayTarget};
    let run = |replay: bool, seed: u64| {
        let mut builder =
            ClusterBuilder::new(3, seed).all_nodes_aex(|| Box::new(TriadLike::default()));
        if replay {
            builder = builder
                .interceptor(Box::new(ReplayAttack::new(
                    NODE3,
                    ReplayTarget::TowardVictim,
                    SimDuration::from_secs(2),
                )))
                .interceptor(Box::new(ReplayAttack::new(
                    NODE3,
                    ReplayTarget::FromVictim,
                    SimDuration::from_millis(500),
                )));
        }
        let mut s = builder.build();
        s.run_until(SimTime::from_secs(120));
        let w = s.world();
        (
            w.recorder.node(2).latest_calibrated_hz(),
            w.recorder.node(2).drift_ms.value_range(),
            w.recorder.node(2).states.availability(SimTime::from_secs(30), SimTime::from_secs(120)),
        )
    };
    let (f_attacked, drift_attacked, avail_attacked) = run(true, 111);
    // Calibration lands in the honest band.
    let f = f_attacked.unwrap();
    assert!(
        stats::freq_error_ppm(f, PAPER_TSC_HZ).abs() < 500.0,
        "replay must not skew calibration: {f}"
    );
    // Drift stays in the fault-free band.
    let (lo, hi) = drift_attacked.unwrap();
    assert!(lo > -100.0 && hi < 100.0, "drift [{lo}, {hi}] ms under replay");
    assert!(avail_attacked > 0.95, "availability {avail_attacked} under replay");
}
