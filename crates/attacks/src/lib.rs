//! # attacks — the paper's attacks on the Triad protocol
//!
//! Implements §III's attacker: the operating system / hypervisor of a
//! single compromised Triad node, with three levers:
//!
//! 1. **Message delay** ([`CalibrationDelayAttack`]): the F+ and F–
//!    attacks that tilt the victim's calibration regression by delaying
//!    TA responses selectively by (estimated) hold time — without ever
//!    reading the encrypted payload;
//! 2. **Interrupt control**: adding AEXs (flooding) or *removing* them
//!    (core isolation), which the paper notes strengthens F+ by letting a
//!    miscalibrated clock run undisturbed — expressed as AEX model choices
//!    on the scenario (see [`aex_flood`] and the `harness` builder);
//! 3. **TSC virtualisation** ([`TscAttackSchedule`]): offset jumps and
//!    rate scaling that the INC monitor is meant to detect.
//!
//! None of these touch protocol code: delays go through `netsim`
//! interception, interrupts through the environment driver, TSC changes
//! through the host model. That separation is the point — the attacks are
//! exactly as powerful as the paper's threat model allows, no more.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod adaptive;
mod fdelay;
mod isolation;
mod replay;
mod tsc_manip;

pub use adaptive::AdaptiveDelayAttack;
pub use fdelay::{CalibrationDelayAttack, DelayAttackMode};
pub use isolation::{IsolationAttack, IsolationScope};
pub use replay::{ReplayAttack, ReplayTarget};
pub use tsc_manip::{PlannedManipulation, TscAttackSchedule};

use sim::SimDuration;
use tsc::{AexModel, Periodic};

/// An AEX-flooding environment: the attacker interrupts the victim's
/// monitoring core every `period` (§III-A: the attacker "may also
/// arbitrarily cause interruptions").
pub fn aex_flood(period: SimDuration) -> Box<dyn AexModel> {
    Box::new(Periodic { period })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sim::SimTime;

    #[test]
    fn flood_is_periodic() {
        let mut m = aex_flood(SimDuration::from_millis(5));
        let mut rng = {
            use rand::SeedableRng;
            rand::rngs::StdRng::seed_from_u64(0)
        };
        assert_eq!(m.next_delay(SimTime::ZERO, &mut rng), SimDuration::from_millis(5));
    }
}
