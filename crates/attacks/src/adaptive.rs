//! An adaptive variant of the F+/F– attack.
//!
//! [`crate::CalibrationDelayAttack`] needs the operator to guess a
//! hold-classification threshold (the paper uses 500 ms, knowing the
//! protocol's 0 s/1 s schedule). The adaptive attacker instead *learns*
//! the victim's calibration schedule from observed round-trip timing
//! alone — §III-C: "the attacker is able to measure network delays between
//! its machine and the TA, as well as roundtrip times part of Triad's
//! calibration protocol, so the attacker can estimate s".
//!
//! It passively observes a warm-up batch of request→response gaps, splits
//! them at the widest gap between sorted observations (a 1-D two-cluster
//! split), and then delays whichever class its mode targets. Paired with a
//! TSC nudge that forces the victim to recalibrate (`TscAttackSchedule`),
//! this mounts the full attack with *zero* protocol knowledge.

use std::collections::VecDeque;

use netsim::{Addr, InterceptAction, Interceptor, MsgMeta};
use sim::{SimDuration, SimTime};

use crate::fdelay::DelayAttackMode;

/// Self-calibrating F+/F– interceptor.
#[derive(Debug)]
pub struct AdaptiveDelayAttack {
    victim: Addr,
    ta: Addr,
    mode: DelayAttackMode,
    added_delay: SimDuration,
    warmup: usize,
    observed_holds: Vec<f64>,
    threshold_s: Option<f64>,
    outstanding: VecDeque<SimTime>,
    delayed: u64,
}

impl AdaptiveDelayAttack {
    /// Creates the attack; it stays passive until `warmup` responses have
    /// been observed (at least 4).
    ///
    /// # Panics
    ///
    /// Panics when `warmup < 4` (two observations per class are the
    /// minimum for a meaningful split).
    pub fn new(
        victim: Addr,
        ta: Addr,
        mode: DelayAttackMode,
        added_delay: SimDuration,
        warmup: usize,
    ) -> Self {
        assert!(warmup >= 4, "warm-up needs at least 4 observations");
        AdaptiveDelayAttack {
            victim,
            ta,
            mode,
            added_delay,
            warmup,
            observed_holds: Vec::new(),
            threshold_s: None,
            outstanding: VecDeque::new(),
            delayed: 0,
        }
    }

    /// The learned classification threshold, once warm-up completed.
    pub fn learned_threshold(&self) -> Option<SimDuration> {
        self.threshold_s.map(SimDuration::from_secs_f64)
    }

    /// Responses delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// Splits sorted observations at the widest gap; returns the midpoint,
    /// or `None` when the spread is too small to distinguish classes.
    fn split(mut holds: Vec<f64>) -> Option<f64> {
        holds.sort_by(|a, b| a.partial_cmp(b).expect("holds are finite"));
        let (lo, hi) = (holds[0], holds[holds.len() - 1]);
        if hi - lo < 0.05 {
            return None; // all one class: nothing to discriminate yet
        }
        let mut best_gap = 0.0;
        let mut best_mid = (lo + hi) / 2.0;
        for w in holds.windows(2) {
            let gap = w[1] - w[0];
            if gap > best_gap {
                best_gap = gap;
                best_mid = (w[0] + w[1]) / 2.0;
            }
        }
        Some(best_mid)
    }
}

impl Interceptor for AdaptiveDelayAttack {
    fn on_message(&mut self, now: SimTime, meta: &MsgMeta, _ct: &[u8]) -> InterceptAction {
        if meta.src == self.victim && meta.dst == self.ta {
            self.outstanding.push_back(now);
            return InterceptAction::Deliver;
        }
        if meta.src == self.ta && meta.dst == self.victim {
            let Some(request_at) = self.outstanding.pop_front() else {
                return InterceptAction::Deliver;
            };
            let hold = now.saturating_duration_since(request_at).as_secs_f64();
            match self.threshold_s {
                None => {
                    self.observed_holds.push(hold);
                    if self.observed_holds.len() >= self.warmup {
                        self.threshold_s = Self::split(self.observed_holds.clone());
                    }
                    InterceptAction::Deliver
                }
                Some(threshold) => {
                    let is_high = hold >= threshold;
                    let hit = match self.mode {
                        DelayAttackMode::FPlus => is_high,
                        DelayAttackMode::FMinus => !is_high,
                    };
                    if hit {
                        self.delayed += 1;
                        InterceptAction::Delay(self.added_delay)
                    } else {
                        InterceptAction::Deliver
                    }
                }
            }
        } else {
            InterceptAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u16, dst: u16) -> MsgMeta {
        MsgMeta { src: Addr(src), dst: Addr(dst), size: 48, send_time: SimTime::ZERO }
    }

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn learns_the_schedule_then_attacks() {
        let mut atk = AdaptiveDelayAttack::new(
            Addr(3),
            Addr(0),
            DelayAttackMode::FMinus,
            SimDuration::from_millis(100),
            4,
        );
        // Warm-up: two short (≈1 ms) and two long (≈1001 ms) exchanges.
        let mut t = 0;
        for hold in [1u64, 1001, 1, 1001] {
            atk.on_message(at(t), &meta(3, 0), &[]);
            atk.on_message(at(t + hold), &meta(0, 3), &[]);
            t += hold + 10;
        }
        let learned = atk.learned_threshold().expect("threshold learned");
        let s = learned.as_secs_f64();
        assert!(s > 0.1 && s < 0.9, "threshold {s} should sit between classes");
        assert_eq!(atk.delayed(), 0, "passive during warm-up");

        // Now a short exchange gets the F– treatment…
        atk.on_message(at(t), &meta(3, 0), &[]);
        assert_eq!(
            atk.on_message(at(t + 1), &meta(0, 3), &[]),
            InterceptAction::Delay(SimDuration::from_millis(100))
        );
        // …and a long one passes.
        atk.on_message(at(t + 10), &meta(3, 0), &[]);
        assert_eq!(atk.on_message(at(t + 1011), &meta(0, 3), &[]), InterceptAction::Deliver);
        assert_eq!(atk.delayed(), 1);
    }

    #[test]
    fn refuses_to_attack_indistinct_traffic() {
        let mut atk = AdaptiveDelayAttack::new(
            Addr(3),
            Addr(0),
            DelayAttackMode::FMinus,
            SimDuration::from_millis(100),
            4,
        );
        // All observations near 1 ms: no second class to find.
        let mut t = 0;
        for _ in 0..6 {
            atk.on_message(at(t), &meta(3, 0), &[]);
            atk.on_message(at(t + 1), &meta(0, 3), &[]);
            t += 20;
        }
        assert!(atk.learned_threshold().is_none());
        assert_eq!(atk.delayed(), 0);
    }

    #[test]
    #[should_panic(expected = "at least 4")]
    fn tiny_warmup_rejected() {
        AdaptiveDelayAttack::new(
            Addr(3),
            Addr(0),
            DelayAttackMode::FPlus,
            SimDuration::from_millis(100),
            2,
        );
    }
}
