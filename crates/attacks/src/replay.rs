//! Datagram replay (§III-A: the attacker controls the OS and can capture
//! and re-inject any traffic it has seen).
//!
//! The replayed bytes are authentic — they decrypt and authenticate
//! perfectly, because they *are* a genuine message. What must stop them is
//! the protocol layer: nonce matching for request/response exchanges and
//! round bookkeeping for peer untainting. [`ReplayAttack`] re-injects
//! every matching message after a configurable delay so tests can verify
//! exactly that.

use netsim::{Addr, InterceptAction, Interceptor, MsgMeta};
use sim::{SimDuration, SimTime};

/// Which traffic to replay.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplayTarget {
    /// Replay messages sent *to* the victim (e.g. old TA responses and
    /// peer timestamps — attempts to feed it stale time).
    TowardVictim,
    /// Replay messages sent *by* the victim (e.g. duplicate its requests).
    FromVictim,
}

/// Replays a victim's traffic after a fixed delay.
#[derive(Debug)]
pub struct ReplayAttack {
    victim: Addr,
    target: ReplayTarget,
    delay: SimDuration,
    replayed: u64,
}

impl ReplayAttack {
    /// Creates the attack; each matching datagram is re-injected once,
    /// `delay` after its normal delivery.
    pub fn new(victim: Addr, target: ReplayTarget, delay: SimDuration) -> Self {
        ReplayAttack { victim, target, delay, replayed: 0 }
    }

    /// Datagrams duplicated so far.
    pub fn replayed(&self) -> u64 {
        self.replayed
    }
}

impl Interceptor for ReplayAttack {
    fn on_message(&mut self, _now: SimTime, meta: &MsgMeta, _ct: &[u8]) -> InterceptAction {
        let hit = match self.target {
            ReplayTarget::TowardVictim => meta.dst == self.victim,
            ReplayTarget::FromVictim => meta.src == self.victim,
        };
        if hit {
            self.replayed += 1;
            InterceptAction::Replay(self.delay)
        } else {
            InterceptAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u16, dst: u16) -> MsgMeta {
        MsgMeta { src: Addr(src), dst: Addr(dst), size: 48, send_time: SimTime::ZERO }
    }

    #[test]
    fn replays_only_the_selected_direction() {
        let mut toward =
            ReplayAttack::new(Addr(3), ReplayTarget::TowardVictim, SimDuration::from_secs(1));
        assert!(matches!(
            toward.on_message(SimTime::ZERO, &meta(0, 3), &[]),
            InterceptAction::Replay(_)
        ));
        assert_eq!(toward.on_message(SimTime::ZERO, &meta(3, 0), &[]), InterceptAction::Deliver);
        assert_eq!(toward.on_message(SimTime::ZERO, &meta(1, 2), &[]), InterceptAction::Deliver);
        assert_eq!(toward.replayed(), 1);

        let mut from =
            ReplayAttack::new(Addr(3), ReplayTarget::FromVictim, SimDuration::from_secs(1));
        assert!(matches!(
            from.on_message(SimTime::ZERO, &meta(3, 1), &[]),
            InterceptAction::Replay(_)
        ));
        assert_eq!(from.on_message(SimTime::ZERO, &meta(1, 3), &[]), InterceptAction::Deliver);
    }
}
