//! The F+ / F– calibration delay attacks (§III-C).
//!
//! The attacker controls the victim node's OS, so it sits on-path between
//! that node and the Time Authority. It cannot read the encrypted
//! calibration messages — in particular not the requested hold time `s` —
//! but it *can* time them: the gap between a request passing outbound and
//! its response passing inbound is `s + d_net`, so a threshold cleanly
//! classifies 0 s-sleep vs 1 s-sleep exchanges.
//!
//! - **F+**: add delay to high-`s` responses → steeper regression →
//!   `F^calib > F^TSC` → the victim's clock runs *slow* (the paper's
//!   −91 ms/s at +100 ms on 1 s-sleeps);
//! - **F–**: add delay to low-`s` responses → flatter regression →
//!   `F^calib < F^TSC` → the victim's clock runs *fast* (+113 ms/s), which
//!   §IV-B.2 shows propagates to honest peers.

use std::collections::VecDeque;

use netsim::{Addr, InterceptAction, Interceptor, MsgMeta};
use sim::{SimDuration, SimTime};

/// Which side of the regression the attacker tilts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DelayAttackMode {
    /// Delay high-sleep responses: victim clock slows down.
    FPlus,
    /// Delay low-sleep responses: victim clock speeds up (propagates!).
    FMinus,
}

/// On-path interceptor implementing F+ or F– against one victim node.
///
/// Works purely from metadata and timing: requests from the victim to the
/// TA are queued FIFO (the Triad node runs one TA exchange at a time), and
/// each TA→victim response is matched to the oldest outstanding request to
/// estimate the TA-side hold.
#[derive(Debug)]
pub struct CalibrationDelayAttack {
    victim: Addr,
    ta: Addr,
    mode: DelayAttackMode,
    added_delay: SimDuration,
    sleep_threshold: SimDuration,
    outstanding: VecDeque<SimTime>,
    delayed: u64,
    observed_responses: u64,
}

impl CalibrationDelayAttack {
    /// Creates the attack with the paper's parameters: +100 ms added
    /// delay, 500 ms hold-classification threshold.
    pub fn paper_default(victim: Addr, ta: Addr, mode: DelayAttackMode) -> Self {
        Self::new(victim, ta, mode, SimDuration::from_millis(100), SimDuration::from_millis(500))
    }

    /// Creates the attack with explicit parameters.
    pub fn new(
        victim: Addr,
        ta: Addr,
        mode: DelayAttackMode,
        added_delay: SimDuration,
        sleep_threshold: SimDuration,
    ) -> Self {
        CalibrationDelayAttack {
            victim,
            ta,
            mode,
            added_delay,
            sleep_threshold,
            outstanding: VecDeque::new(),
            delayed: 0,
            observed_responses: 0,
        }
    }

    /// How many responses the attack has delayed so far.
    pub fn delayed(&self) -> u64 {
        self.delayed
    }

    /// How many TA→victim responses passed the attacker.
    pub fn observed_responses(&self) -> u64 {
        self.observed_responses
    }
}

impl Interceptor for CalibrationDelayAttack {
    fn on_message(&mut self, now: SimTime, meta: &MsgMeta, _ct: &[u8]) -> InterceptAction {
        if meta.src == self.victim && meta.dst == self.ta {
            self.outstanding.push_back(now);
            return InterceptAction::Deliver;
        }
        if meta.src == self.ta && meta.dst == self.victim {
            self.observed_responses += 1;
            let Some(request_at) = self.outstanding.pop_front() else {
                return InterceptAction::Deliver; // response with no request seen
            };
            let estimated_hold = now.saturating_duration_since(request_at);
            let is_high_sleep = estimated_hold >= self.sleep_threshold;
            let hit = match self.mode {
                DelayAttackMode::FPlus => is_high_sleep,
                DelayAttackMode::FMinus => !is_high_sleep,
            };
            if hit {
                self.delayed += 1;
                return InterceptAction::Delay(self.added_delay);
            }
        }
        InterceptAction::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u16, dst: u16, t: SimTime) -> MsgMeta {
        MsgMeta { src: Addr(src), dst: Addr(dst), size: 48, send_time: t }
    }

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn f_plus_delays_only_long_holds() {
        let mut atk =
            CalibrationDelayAttack::paper_default(Addr(3), Addr(0), DelayAttackMode::FPlus);
        // Short exchange: request at 0, response at 1 ms.
        assert_eq!(atk.on_message(t(0), &meta(3, 0, t(0)), &[]), InterceptAction::Deliver);
        assert_eq!(atk.on_message(t(1), &meta(0, 3, t(1)), &[]), InterceptAction::Deliver);
        // Long exchange: request at 10, response at 1010 ms.
        assert_eq!(atk.on_message(t(10), &meta(3, 0, t(10)), &[]), InterceptAction::Deliver);
        assert_eq!(
            atk.on_message(t(1010), &meta(0, 3, t(1010)), &[]),
            InterceptAction::Delay(SimDuration::from_millis(100))
        );
        assert_eq!(atk.delayed(), 1);
        assert_eq!(atk.observed_responses(), 2);
    }

    #[test]
    fn f_minus_delays_only_short_holds() {
        let mut atk =
            CalibrationDelayAttack::paper_default(Addr(3), Addr(0), DelayAttackMode::FMinus);
        atk.on_message(t(0), &meta(3, 0, t(0)), &[]);
        assert_eq!(
            atk.on_message(t(1), &meta(0, 3, t(1)), &[]),
            InterceptAction::Delay(SimDuration::from_millis(100))
        );
        atk.on_message(t(10), &meta(3, 0, t(10)), &[]);
        assert_eq!(atk.on_message(t(1010), &meta(0, 3, t(1010)), &[]), InterceptAction::Deliver);
        assert_eq!(atk.delayed(), 1);
    }

    #[test]
    fn other_traffic_is_untouched() {
        let mut atk =
            CalibrationDelayAttack::paper_default(Addr(3), Addr(0), DelayAttackMode::FMinus);
        // Honest node 1 ↔ TA traffic passes freely.
        assert_eq!(atk.on_message(t(0), &meta(1, 0, t(0)), &[]), InterceptAction::Deliver);
        assert_eq!(atk.on_message(t(1), &meta(0, 1, t(1)), &[]), InterceptAction::Deliver);
        // Peer-to-peer traffic of the victim too.
        assert_eq!(atk.on_message(t(2), &meta(3, 1, t(2)), &[]), InterceptAction::Deliver);
        assert_eq!(atk.delayed(), 0);
        assert_eq!(atk.observed_responses(), 0);
    }

    #[test]
    fn unmatched_response_passes() {
        let mut atk =
            CalibrationDelayAttack::paper_default(Addr(3), Addr(0), DelayAttackMode::FMinus);
        assert_eq!(atk.on_message(t(5), &meta(0, 3, t(5)), &[]), InterceptAction::Deliver);
    }
}
