//! Message-drop attacks (§III-A: the attacker "can delay or drop any
//! message between the TEE and other devices").
//!
//! Two escalation levels against one victim node:
//!
//! - **peer isolation**: drop the victim's peer traffic so every taint
//!   falls back to the Time Authority — no direct clock manipulation, but
//!   the victim now fully depends on TA round-trips (more load, more
//!   surface for the delay attacks);
//! - **full isolation**: drop the TA traffic too. The victim can never
//!   untaint after its next AEX and stays unavailable — a denial of
//!   service that the base protocol cannot distinguish from a slow
//!   network.

use netsim::{Addr, InterceptAction, Interceptor, MsgMeta};
use sim::SimTime;

/// What traffic of the victim to kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IsolationScope {
    /// Drop victim ↔ peer traffic, keep the TA reachable.
    PeersOnly,
    /// Drop all of the victim's traffic (peers and TA).
    Everything,
}

/// Drops a victim's traffic per the configured scope.
#[derive(Debug)]
pub struct IsolationAttack {
    victim: Addr,
    ta: Addr,
    scope: IsolationScope,
    dropped: u64,
}

impl IsolationAttack {
    /// Creates the attack against `victim` (the TA address is needed to
    /// tell peer traffic from TA traffic).
    pub fn new(victim: Addr, ta: Addr, scope: IsolationScope) -> Self {
        IsolationAttack { victim, ta, scope, dropped: 0 }
    }

    /// Messages dropped so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Interceptor for IsolationAttack {
    fn on_message(&mut self, _now: SimTime, meta: &MsgMeta, _ct: &[u8]) -> InterceptAction {
        let involves_victim = meta.src == self.victim || meta.dst == self.victim;
        if !involves_victim {
            return InterceptAction::Deliver;
        }
        let involves_ta = meta.src == self.ta || meta.dst == self.ta;
        let kill = match self.scope {
            IsolationScope::PeersOnly => !involves_ta,
            IsolationScope::Everything => true,
        };
        if kill {
            self.dropped += 1;
            InterceptAction::Drop
        } else {
            InterceptAction::Deliver
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn meta(src: u16, dst: u16) -> MsgMeta {
        MsgMeta { src: Addr(src), dst: Addr(dst), size: 48, send_time: SimTime::ZERO }
    }

    #[test]
    fn peers_only_spares_the_ta_link() {
        let mut atk = IsolationAttack::new(Addr(3), Addr(0), IsolationScope::PeersOnly);
        // Victim ↔ peers: dropped, both directions.
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(3, 1), &[]), InterceptAction::Drop);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(2, 3), &[]), InterceptAction::Drop);
        // Victim ↔ TA: delivered.
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(3, 0), &[]), InterceptAction::Deliver);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(0, 3), &[]), InterceptAction::Deliver);
        // Honest ↔ honest and honest ↔ TA: delivered.
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(1, 2), &[]), InterceptAction::Deliver);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(1, 0), &[]), InterceptAction::Deliver);
        assert_eq!(atk.dropped(), 2);
    }

    #[test]
    fn everything_kills_all_victim_traffic() {
        let mut atk = IsolationAttack::new(Addr(3), Addr(0), IsolationScope::Everything);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(3, 0), &[]), InterceptAction::Drop);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(0, 3), &[]), InterceptAction::Drop);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(3, 1), &[]), InterceptAction::Drop);
        assert_eq!(atk.on_message(SimTime::ZERO, &meta(1, 2), &[]), InterceptAction::Deliver);
        assert_eq!(atk.dropped(), 3);
    }
}
