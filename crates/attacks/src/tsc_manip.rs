//! Hypervisor-level TSC manipulation (§III-A).
//!
//! A malicious hypervisor virtualising the TSC "may change its value's
//! offset and scaling factor for the guest VM running a Triad node". The
//! [`TscAttackSchedule`] actor applies such manipulations to a victim's
//! host at chosen reference instants; the node's INC-counter monitoring is
//! what is supposed to catch them (RQ A.1, exercised by experiment E13).

use netsim::Addr;
use runtime::{SysEvent, World};
use sim::{Actor, Ctx, SimTime};
use tsc::TscManipulation;

/// One planned manipulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedManipulation {
    /// When to apply it.
    pub at: SimTime,
    /// Whose TSC to manipulate.
    pub victim: Addr,
    /// What to do to it.
    pub manipulation: TscManipulation,
}

impl PlannedManipulation {
    /// Encodes as `<at_ns> <victim> <kind> <value>` — one reproducer-file
    /// line, round-tripped exactly by [`PlannedManipulation::decode`].
    pub fn encode(&self) -> String {
        format!("{} {} {}", self.at.as_nanos(), self.victim.0, self.manipulation.encode())
    }

    /// Decodes one `<at_ns> <victim> <kind> <value>` line.
    ///
    /// # Errors
    ///
    /// Returns a description of the first malformed token (including
    /// manipulation values [`tsc::TscClock::manipulate`] would panic on).
    pub fn decode(s: &str) -> Result<PlannedManipulation, String> {
        let mut parts = s.trim().splitn(3, ' ');
        let at = parts
            .next()
            .filter(|t| !t.is_empty())
            .ok_or_else(|| "empty manipulation line".to_string())?;
        let at = at.parse().map_err(|_| format!("unparseable timestamp {at:?}"))?;
        let victim = parts.next().ok_or_else(|| "missing victim".to_string())?;
        let victim = victim.parse().map_err(|_| format!("unparseable victim {victim:?}"))?;
        let manipulation = TscManipulation::decode(
            parts.next().ok_or_else(|| "missing manipulation".to_string())?,
        )?;
        Ok(PlannedManipulation { at: SimTime::from_nanos(at), victim: Addr(victim), manipulation })
    }

    /// Bounds-checks against an `n_nodes` cluster: the victim must be a
    /// node address (`1..=n_nodes` — the TA's clock is the reference and
    /// cannot be manipulated) and the manipulation value must be safe.
    ///
    /// # Errors
    ///
    /// Returns a description of the violated bound.
    pub fn validate(&self, n_nodes: usize) -> Result<(), String> {
        if self.victim.0 == 0 || self.victim.0 as usize > n_nodes {
            return Err(format!("victim {} outside 1..={n_nodes}", self.victim.0));
        }
        self.manipulation.validate()
    }
}

/// Applies a fixed schedule of TSC manipulations.
#[derive(Debug, Clone, PartialEq)]
pub struct TscAttackSchedule {
    plan: Vec<PlannedManipulation>,
    applied: usize,
}

impl TscAttackSchedule {
    /// Creates the schedule; entries may be in any order.
    pub fn new(mut plan: Vec<PlannedManipulation>) -> Self {
        plan.sort_by_key(|p| p.at);
        TscAttackSchedule { plan, applied: 0 }
    }

    /// How many manipulations have been applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }
}

impl Actor<World, SysEvent> for TscAttackSchedule {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        for (i, p) in self.plan.iter().enumerate() {
            ctx.schedule_at(p.at, SysEvent::timer(i as u64));
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        let SysEvent::Timer { token } = ev else { return };
        let p = self.plan[token as usize];
        let now = ctx.now();
        ctx.world.host_mut(p.victim).tsc.manipulate(now, p.manipulation);
        self.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DelayModel, Network};
    use runtime::Host;
    use sim::{SimDuration, Simulation};

    #[test]
    fn planned_manipulation_codec_round_trips() {
        for p in [
            PlannedManipulation {
                at: SimTime::from_secs(42),
                victim: Addr(2),
                manipulation: TscManipulation::OffsetJump(-29_000_000),
            },
            PlannedManipulation {
                at: SimTime::from_nanos(1),
                victim: Addr(1),
                manipulation: TscManipulation::ScaleRate(1.000_05),
            },
        ] {
            assert_eq!(PlannedManipulation::decode(&p.encode()), Ok(p));
            assert!(p.validate(3).is_ok());
        }
        assert!(PlannedManipulation::decode("5 1").is_err());
        assert!(PlannedManipulation::decode("x 1 offset-jump 5").is_err());
        assert!(PlannedManipulation::decode("5 1 scale-rate -1").is_err());
        let ta = PlannedManipulation {
            at: SimTime::ZERO,
            victim: Addr(0),
            manipulation: TscManipulation::OffsetJump(1),
        };
        assert!(ta.validate(3).is_err());
        let oob = PlannedManipulation { victim: Addr(4), ..ta };
        assert!(oob.validate(3).is_err());
    }

    #[test]
    fn schedule_applies_in_order() {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let world = World::new(net, vec![Host::paper_default()]);
        let mut s = Simulation::new(world, 1);
        s.add_actor(Box::new(TscAttackSchedule::new(vec![
            PlannedManipulation {
                at: SimTime::from_secs(10),
                victim: Addr(1),
                manipulation: TscManipulation::ScaleRate(1.1),
            },
            PlannedManipulation {
                at: SimTime::from_secs(5),
                victim: Addr(1),
                manipulation: TscManipulation::OffsetJump(1_000_000),
            },
        ])));
        s.run_until(SimTime::from_secs(4));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 0);
        s.run_until(SimTime::from_secs(6));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 1);
        assert_eq!(s.world().host(Addr(1)).tsc.rate_hz(), tsc::PAPER_TSC_HZ);
        s.run_until(SimTime::from_secs(11));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 2);
        assert!((s.world().host(Addr(1)).tsc.rate_hz() - tsc::PAPER_TSC_HZ * 1.1).abs() < 1.0);
    }
}
