//! Hypervisor-level TSC manipulation (§III-A).
//!
//! A malicious hypervisor virtualising the TSC "may change its value's
//! offset and scaling factor for the guest VM running a Triad node". The
//! [`TscAttackSchedule`] actor applies such manipulations to a victim's
//! host at chosen reference instants; the node's INC-counter monitoring is
//! what is supposed to catch them (RQ A.1, exercised by experiment E13).

use netsim::Addr;
use runtime::{SysEvent, World};
use sim::{Actor, Ctx, SimTime};
use tsc::TscManipulation;

/// One planned manipulation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PlannedManipulation {
    /// When to apply it.
    pub at: SimTime,
    /// Whose TSC to manipulate.
    pub victim: Addr,
    /// What to do to it.
    pub manipulation: TscManipulation,
}

/// Applies a fixed schedule of TSC manipulations.
#[derive(Debug, Clone, PartialEq)]
pub struct TscAttackSchedule {
    plan: Vec<PlannedManipulation>,
    applied: usize,
}

impl TscAttackSchedule {
    /// Creates the schedule; entries may be in any order.
    pub fn new(mut plan: Vec<PlannedManipulation>) -> Self {
        plan.sort_by_key(|p| p.at);
        TscAttackSchedule { plan, applied: 0 }
    }

    /// How many manipulations have been applied so far.
    pub fn applied(&self) -> usize {
        self.applied
    }
}

impl Actor<World, SysEvent> for TscAttackSchedule {
    fn on_start(&mut self, ctx: &mut Ctx<'_, World, SysEvent>) {
        for (i, p) in self.plan.iter().enumerate() {
            ctx.schedule_at(p.at, SysEvent::timer(i as u64));
        }
    }

    fn on_event(&mut self, ctx: &mut Ctx<'_, World, SysEvent>, ev: SysEvent) {
        let SysEvent::Timer { token } = ev else { return };
        let p = self.plan[token as usize];
        let now = ctx.now();
        ctx.world.host_mut(p.victim).tsc.manipulate(now, p.manipulation);
        self.applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netsim::{DelayModel, Network};
    use runtime::Host;
    use sim::{SimDuration, Simulation};

    #[test]
    fn schedule_applies_in_order() {
        let net = Network::new(DelayModel::Constant(SimDuration::ZERO), 0.0);
        let world = World::new(net, vec![Host::paper_default()]);
        let mut s = Simulation::new(world, 1);
        s.add_actor(Box::new(TscAttackSchedule::new(vec![
            PlannedManipulation {
                at: SimTime::from_secs(10),
                victim: Addr(1),
                manipulation: TscManipulation::ScaleRate(1.1),
            },
            PlannedManipulation {
                at: SimTime::from_secs(5),
                victim: Addr(1),
                manipulation: TscManipulation::OffsetJump(1_000_000),
            },
        ])));
        s.run_until(SimTime::from_secs(4));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 0);
        s.run_until(SimTime::from_secs(6));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 1);
        assert_eq!(s.world().host(Addr(1)).tsc.rate_hz(), tsc::PAPER_TSC_HZ);
        s.run_until(SimTime::from_secs(11));
        assert_eq!(s.world().host(Addr(1)).tsc.manipulation_count(), 2);
        assert!((s.world().host(Addr(1)).tsc.rate_hz() - tsc::PAPER_TSC_HZ * 1.1).abs() < 1.0);
    }
}
