//! # wire — Triad protocol message vocabulary and binary codec
//!
//! Defines every message exchanged in the reproduced system — Triad node ↔
//! Time Authority calibration traffic, node ↔ node peer untainting, the
//! client-facing timestamp service, and the Section V hardened-protocol
//! extensions — plus a compact hand-rolled binary codec.
//!
//! Messages are serialized with this codec and then sealed with
//! `tt_crypto::SealingKey` before they touch the simulated network, so
//! the on-path attacker observes only sizes and timing (the paper's §III
//! attacker model: "Communications are authenticated and encrypted, so the
//! attacker does not have access to s").

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod codec;
mod message;

pub use codec::{DecodeError, PROTOCOL_VERSION};
pub use message::{AttestOutcome, Message, NodeId, ServeOutcome, TimeReading};
