//! Binary encoding of [`Message`]: version byte, tag byte, fixed-width
//! big-endian fields.

use bytes::{Buf, Bytes};

use crate::message::{AttestOutcome, Message, NodeId, ServeOutcome};

/// Version byte prepended to every encoded message.
pub const PROTOCOL_VERSION: u8 = 1;

const TAG_CALIB_REQ: u8 = 1;
const TAG_CALIB_RESP: u8 = 2;
const TAG_PEER_REQ: u8 = 3;
const TAG_PEER_RESP: u8 = 4;
const TAG_CLIENT_REQ: u8 = 5;
const TAG_CLIENT_RESP: u8 = 6;
const TAG_INTERVAL_REQ: u8 = 7;
const TAG_INTERVAL_RESP: u8 = 8;
const TAG_CHIMER_ANNOUNCE: u8 = 9;
const TAG_READING_REQ: u8 = 10;
const TAG_READING_RESP: u8 = 11;
const TAG_SERVE_REQ: u8 = 12;
const TAG_SERVE_RESP: u8 = 13;
const TAG_ATTEST_REQ: u8 = 14;
const TAG_ATTEST_RESP: u8 = 15;

// ServeOutcome discriminants inside TAG_SERVE_RESP.
const OUTCOME_TIME: u8 = 0;
const OUTCOME_READING: u8 = 1;
const OUTCOME_OVERLOADED: u8 = 2;
const OUTCOME_UNAVAILABLE: u8 = 3;

// AttestOutcome discriminants inside TAG_ATTEST_RESP.
const ATTEST_ATTESTATION: u8 = 0;
const ATTEST_OVERLOADED: u8 = 1;
const ATTEST_UNAVAILABLE: u8 = 2;

/// A message failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// The buffer ended before the message was complete.
    UnexpectedEof,
    /// The version byte did not match [`PROTOCOL_VERSION`].
    BadVersion(u8),
    /// The tag byte named no known message.
    UnknownTag(u8),
    /// Bytes remained after a complete message.
    TrailingBytes(usize),
    /// A field carried an invalid value (e.g. a non-boolean flag).
    InvalidValue,
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::UnexpectedEof => f.write_str("unexpected end of message"),
            DecodeError::BadVersion(v) => write!(f, "unsupported protocol version {v}"),
            DecodeError::UnknownTag(t) => write!(f, "unknown message tag {t}"),
            DecodeError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
            DecodeError::InvalidValue => f.write_str("invalid field value"),
        }
    }
}

impl std::error::Error for DecodeError {}

fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_be_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_be_bytes());
}

impl Message {
    /// Encodes the message into its wire form.
    pub fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(32);
        self.encode_into(&mut buf);
        buf
    }

    /// Allocation-free [`Message::encode`]: appends the wire form to `buf`
    /// (a reused scratch buffer on the hot path — clear it first for a
    /// standalone message).
    pub fn encode_into(&self, buf: &mut Vec<u8>) {
        put_u8(buf, PROTOCOL_VERSION);
        match self {
            Message::CalibrationRequest { nonce, sleep_ns } => {
                put_u8(buf, TAG_CALIB_REQ);
                put_u64(buf, *nonce);
                put_u64(buf, *sleep_ns);
            }
            Message::CalibrationResponse { nonce, ta_time_ns, slept_ns } => {
                put_u8(buf, TAG_CALIB_RESP);
                put_u64(buf, *nonce);
                put_u64(buf, *ta_time_ns);
                put_u64(buf, *slept_ns);
            }
            Message::PeerTimeRequest { nonce } => {
                put_u8(buf, TAG_PEER_REQ);
                put_u64(buf, *nonce);
            }
            Message::PeerTimeResponse { nonce, timestamp_ns } => {
                put_u8(buf, TAG_PEER_RESP);
                put_u64(buf, *nonce);
                put_u64(buf, *timestamp_ns);
            }
            Message::ClientTimeRequest { nonce } => {
                put_u8(buf, TAG_CLIENT_REQ);
                put_u64(buf, *nonce);
            }
            Message::ClientTimeResponse { nonce, timestamp_ns } => {
                put_u8(buf, TAG_CLIENT_RESP);
                put_u64(buf, *nonce);
                match timestamp_ns {
                    Some(ts) => {
                        put_u8(buf, 1);
                        put_u64(buf, *ts);
                    }
                    None => put_u8(buf, 0),
                }
            }
            Message::IntervalRequest { nonce } => {
                put_u8(buf, TAG_INTERVAL_REQ);
                put_u64(buf, *nonce);
            }
            Message::IntervalResponse { nonce, timestamp_ns, error_bound_ns, tainted } => {
                put_u8(buf, TAG_INTERVAL_RESP);
                put_u64(buf, *nonce);
                put_u64(buf, *timestamp_ns);
                put_u64(buf, *error_bound_ns);
                put_u8(buf, u8::from(*tainted));
            }
            Message::ChimerAnnouncement { epoch, chimers } => {
                put_u8(buf, TAG_CHIMER_ANNOUNCE);
                put_u64(buf, *epoch);
                // tt-lint: allow(panic-surface) — encode side, not decode: the chimer
                // set is bounded by the cluster size (u16 addresses), so overflow is a
                // local programming error, never reachable from network input.
                let n = u16::try_from(chimers.len()).expect("chimer set exceeds u16::MAX");
                put_u16(buf, n);
                for c in chimers {
                    put_u16(buf, c.0);
                }
            }
            Message::TimeReadingRequest { nonce } => {
                put_u8(buf, TAG_READING_REQ);
                put_u64(buf, *nonce);
            }
            Message::TimeReadingResponse { nonce, reading } => {
                put_u8(buf, TAG_READING_RESP);
                put_u64(buf, *nonce);
                match reading {
                    Some(r) => {
                        put_u8(buf, 1);
                        put_u64(buf, r.estimate_ns);
                        put_u64(buf, r.uncertainty_ns);
                        put_u8(buf, u8::from(r.degraded));
                    }
                    None => put_u8(buf, 0),
                }
            }
            Message::ServeRequest { nonce, accept_degraded } => {
                put_u8(buf, TAG_SERVE_REQ);
                put_u64(buf, *nonce);
                put_u8(buf, u8::from(*accept_degraded));
            }
            Message::ServeResponse { nonce, outcome } => {
                put_u8(buf, TAG_SERVE_RESP);
                put_u64(buf, *nonce);
                match outcome {
                    ServeOutcome::Time(ts) => {
                        put_u8(buf, OUTCOME_TIME);
                        put_u64(buf, *ts);
                    }
                    ServeOutcome::Reading(r) => {
                        put_u8(buf, OUTCOME_READING);
                        put_u64(buf, r.estimate_ns);
                        put_u64(buf, r.uncertainty_ns);
                        put_u8(buf, u8::from(r.degraded));
                    }
                    ServeOutcome::Overloaded => put_u8(buf, OUTCOME_OVERLOADED),
                    ServeOutcome::Unavailable => put_u8(buf, OUTCOME_UNAVAILABLE),
                }
            }
            Message::AttestRequest { nonce } => {
                put_u8(buf, TAG_ATTEST_REQ);
                put_u64(buf, *nonce);
            }
            Message::AttestResponse { nonce, outcome } => {
                put_u8(buf, TAG_ATTEST_RESP);
                put_u64(buf, *nonce);
                match outcome {
                    AttestOutcome::Attestation(r) => {
                        put_u8(buf, ATTEST_ATTESTATION);
                        put_u64(buf, r.estimate_ns);
                        put_u64(buf, r.uncertainty_ns);
                        put_u8(buf, u8::from(r.degraded));
                    }
                    AttestOutcome::Overloaded => put_u8(buf, ATTEST_OVERLOADED),
                    AttestOutcome::Unavailable => put_u8(buf, ATTEST_UNAVAILABLE),
                }
            }
        }
    }

    /// Decodes a message from its wire form.
    ///
    /// # Errors
    ///
    /// Returns a [`DecodeError`] when the buffer is truncated, versioned
    /// wrong, tagged unknown, carries invalid values, or has trailing bytes.
    pub fn decode(data: &[u8]) -> Result<Message, DecodeError> {
        let mut buf = Bytes::copy_from_slice(data);
        let version = get_u8(&mut buf)?;
        if version != PROTOCOL_VERSION {
            return Err(DecodeError::BadVersion(version));
        }
        let tag = get_u8(&mut buf)?;
        let msg = match tag {
            TAG_CALIB_REQ => Message::CalibrationRequest {
                nonce: get_u64(&mut buf)?,
                sleep_ns: get_u64(&mut buf)?,
            },
            TAG_CALIB_RESP => Message::CalibrationResponse {
                nonce: get_u64(&mut buf)?,
                ta_time_ns: get_u64(&mut buf)?,
                slept_ns: get_u64(&mut buf)?,
            },
            TAG_PEER_REQ => Message::PeerTimeRequest { nonce: get_u64(&mut buf)? },
            TAG_PEER_RESP => Message::PeerTimeResponse {
                nonce: get_u64(&mut buf)?,
                timestamp_ns: get_u64(&mut buf)?,
            },
            TAG_CLIENT_REQ => Message::ClientTimeRequest { nonce: get_u64(&mut buf)? },
            TAG_CLIENT_RESP => {
                let nonce = get_u64(&mut buf)?;
                let timestamp_ns = match get_u8(&mut buf)? {
                    0 => None,
                    1 => Some(get_u64(&mut buf)?),
                    _ => return Err(DecodeError::InvalidValue),
                };
                Message::ClientTimeResponse { nonce, timestamp_ns }
            }
            TAG_INTERVAL_REQ => Message::IntervalRequest { nonce: get_u64(&mut buf)? },
            TAG_INTERVAL_RESP => Message::IntervalResponse {
                nonce: get_u64(&mut buf)?,
                timestamp_ns: get_u64(&mut buf)?,
                error_bound_ns: get_u64(&mut buf)?,
                tainted: match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::InvalidValue),
                },
            },
            TAG_CHIMER_ANNOUNCE => {
                let epoch = get_u64(&mut buf)?;
                let n = get_u16(&mut buf)? as usize;
                let mut chimers = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    chimers.push(NodeId(get_u16(&mut buf)?));
                }
                Message::ChimerAnnouncement { epoch, chimers }
            }
            TAG_READING_REQ => Message::TimeReadingRequest { nonce: get_u64(&mut buf)? },
            TAG_READING_RESP => {
                let nonce = get_u64(&mut buf)?;
                let reading = match get_u8(&mut buf)? {
                    0 => None,
                    1 => Some(crate::message::TimeReading {
                        estimate_ns: get_u64(&mut buf)?,
                        uncertainty_ns: get_u64(&mut buf)?,
                        degraded: match get_u8(&mut buf)? {
                            0 => false,
                            1 => true,
                            _ => return Err(DecodeError::InvalidValue),
                        },
                    }),
                    _ => return Err(DecodeError::InvalidValue),
                };
                Message::TimeReadingResponse { nonce, reading }
            }
            TAG_SERVE_REQ => Message::ServeRequest {
                nonce: get_u64(&mut buf)?,
                accept_degraded: match get_u8(&mut buf)? {
                    0 => false,
                    1 => true,
                    _ => return Err(DecodeError::InvalidValue),
                },
            },
            TAG_SERVE_RESP => {
                let nonce = get_u64(&mut buf)?;
                let outcome = match get_u8(&mut buf)? {
                    OUTCOME_TIME => ServeOutcome::Time(get_u64(&mut buf)?),
                    OUTCOME_READING => ServeOutcome::Reading(crate::message::TimeReading {
                        estimate_ns: get_u64(&mut buf)?,
                        uncertainty_ns: get_u64(&mut buf)?,
                        degraded: match get_u8(&mut buf)? {
                            0 => false,
                            1 => true,
                            _ => return Err(DecodeError::InvalidValue),
                        },
                    }),
                    OUTCOME_OVERLOADED => ServeOutcome::Overloaded,
                    OUTCOME_UNAVAILABLE => ServeOutcome::Unavailable,
                    _ => return Err(DecodeError::InvalidValue),
                };
                Message::ServeResponse { nonce, outcome }
            }
            TAG_ATTEST_REQ => Message::AttestRequest { nonce: get_u64(&mut buf)? },
            TAG_ATTEST_RESP => {
                let nonce = get_u64(&mut buf)?;
                let outcome = match get_u8(&mut buf)? {
                    ATTEST_ATTESTATION => AttestOutcome::Attestation(crate::message::TimeReading {
                        estimate_ns: get_u64(&mut buf)?,
                        uncertainty_ns: get_u64(&mut buf)?,
                        degraded: match get_u8(&mut buf)? {
                            0 => false,
                            1 => true,
                            _ => return Err(DecodeError::InvalidValue),
                        },
                    }),
                    ATTEST_OVERLOADED => AttestOutcome::Overloaded,
                    ATTEST_UNAVAILABLE => AttestOutcome::Unavailable,
                    _ => return Err(DecodeError::InvalidValue),
                };
                Message::AttestResponse { nonce, outcome }
            }
            other => return Err(DecodeError::UnknownTag(other)),
        };
        if buf.has_remaining() {
            return Err(DecodeError::TrailingBytes(buf.remaining()));
        }
        Ok(msg)
    }
}

fn get_u8(buf: &mut Bytes) -> Result<u8, DecodeError> {
    if buf.remaining() < 1 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(buf.get_u8())
}

fn get_u16(buf: &mut Bytes) -> Result<u16, DecodeError> {
    if buf.remaining() < 2 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(buf.get_u16())
}

fn get_u64(buf: &mut Bytes) -> Result<u64, DecodeError> {
    if buf.remaining() < 8 {
        return Err(DecodeError::UnexpectedEof);
    }
    Ok(buf.get_u64())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip(msg: Message) {
        let encoded = msg.encode();
        assert_eq!(Message::decode(&encoded), Ok(msg));
    }

    #[test]
    fn all_variants_round_trip() {
        round_trip(Message::CalibrationRequest { nonce: 42, sleep_ns: 1_000_000_000 });
        round_trip(Message::CalibrationResponse { nonce: 42, ta_time_ns: u64::MAX, slept_ns: 0 });
        round_trip(Message::PeerTimeRequest { nonce: 7 });
        round_trip(Message::PeerTimeResponse { nonce: 7, timestamp_ns: 123_456 });
        round_trip(Message::ClientTimeRequest { nonce: 1 });
        round_trip(Message::ClientTimeResponse { nonce: 1, timestamp_ns: Some(5) });
        round_trip(Message::ClientTimeResponse { nonce: 1, timestamp_ns: None });
        round_trip(Message::IntervalRequest { nonce: 9 });
        round_trip(Message::IntervalResponse {
            nonce: 9,
            timestamp_ns: 10,
            error_bound_ns: 2,
            tainted: true,
        });
        round_trip(Message::ChimerAnnouncement {
            epoch: 3,
            chimers: vec![NodeId(1), NodeId(2), NodeId(9)],
        });
        round_trip(Message::ChimerAnnouncement { epoch: 0, chimers: vec![] });
        round_trip(Message::TimeReadingRequest { nonce: 4 });
        round_trip(Message::TimeReadingResponse { nonce: 4, reading: None });
        round_trip(Message::TimeReadingResponse {
            nonce: 4,
            reading: Some(crate::message::TimeReading {
                estimate_ns: 1_000_000_007,
                uncertainty_ns: 2_500_000,
                degraded: true,
            }),
        });
        round_trip(Message::ServeRequest { nonce: 8, accept_degraded: true });
        round_trip(Message::ServeRequest { nonce: 9, accept_degraded: false });
        round_trip(Message::ServeResponse { nonce: 8, outcome: ServeOutcome::Time(77) });
        round_trip(Message::ServeResponse {
            nonce: 8,
            outcome: ServeOutcome::Reading(crate::message::TimeReading {
                estimate_ns: 5,
                uncertainty_ns: 6,
                degraded: true,
            }),
        });
        round_trip(Message::ServeResponse { nonce: 8, outcome: ServeOutcome::Overloaded });
        round_trip(Message::ServeResponse { nonce: 8, outcome: ServeOutcome::Unavailable });
        round_trip(Message::AttestRequest { nonce: 11 });
        round_trip(Message::AttestResponse {
            nonce: 11,
            outcome: AttestOutcome::Attestation(crate::message::TimeReading {
                estimate_ns: 9_000_000_001,
                uncertainty_ns: 350_000,
                degraded: false,
            }),
        });
        round_trip(Message::AttestResponse { nonce: 11, outcome: AttestOutcome::Overloaded });
        round_trip(Message::AttestResponse { nonce: 11, outcome: AttestOutcome::Unavailable });
    }

    #[test]
    fn attest_outcomes_validated() {
        let mut encoded =
            Message::AttestResponse { nonce: 1, outcome: AttestOutcome::Overloaded }.encode();
        let last = encoded.len() - 1;
        encoded[last] = 9;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::InvalidValue));
        let mut encoded = Message::AttestResponse {
            nonce: 1,
            outcome: AttestOutcome::Attestation(crate::message::TimeReading {
                estimate_ns: 1,
                uncertainty_ns: 2,
                degraded: true,
            }),
        }
        .encode();
        let last = encoded.len() - 1;
        encoded[last] = 7;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::InvalidValue));
    }

    #[test]
    fn serve_flags_and_outcomes_validated() {
        let mut encoded = Message::ServeRequest { nonce: 1, accept_degraded: true }.encode();
        let last = encoded.len() - 1;
        encoded[last] = 9;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::InvalidValue));
        let mut encoded =
            Message::ServeResponse { nonce: 1, outcome: ServeOutcome::Overloaded }.encode();
        let last = encoded.len() - 1;
        encoded[last] = 42;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::InvalidValue));
    }

    #[test]
    fn serve_requests_are_size_indistinguishable() {
        // The attacker must not learn from ciphertext length whether a
        // client tolerates degraded answers.
        let a = Message::ServeRequest { nonce: 1, accept_degraded: false }.encode();
        let b = Message::ServeRequest { nonce: 2, accept_degraded: true }.encode();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn truncation_fails_cleanly() {
        let encoded = Message::CalibrationRequest { nonce: 1, sleep_ns: 2 }.encode();
        for cut in 0..encoded.len() {
            assert_eq!(
                Message::decode(&encoded[..cut]),
                Err(DecodeError::UnexpectedEof),
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn version_and_tag_validation() {
        let mut encoded = Message::PeerTimeRequest { nonce: 1 }.encode();
        encoded[0] = 99;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::BadVersion(99)));
        encoded[0] = PROTOCOL_VERSION;
        encoded[1] = 200;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::UnknownTag(200)));
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut encoded = Message::PeerTimeRequest { nonce: 1 }.encode();
        encoded.push(0);
        assert_eq!(Message::decode(&encoded), Err(DecodeError::TrailingBytes(1)));
    }

    #[test]
    fn invalid_flag_rejected() {
        let mut encoded = Message::ClientTimeResponse { nonce: 1, timestamp_ns: None }.encode();
        let last = encoded.len() - 1;
        encoded[last] = 7;
        assert_eq!(Message::decode(&encoded), Err(DecodeError::InvalidValue));
    }

    #[test]
    fn requests_with_same_shape_encode_identically_sized() {
        // The attacker sees message sizes: 0s-sleep and 1s-sleep calibration
        // requests must be indistinguishable by length.
        let a = Message::CalibrationRequest { nonce: 1, sleep_ns: 0 }.encode();
        let b = Message::CalibrationRequest { nonce: 2, sleep_ns: 1_000_000_000 }.encode();
        assert_eq!(a.len(), b.len());
    }

    #[test]
    fn error_display() {
        assert_eq!(DecodeError::UnexpectedEof.to_string(), "unexpected end of message");
        assert_eq!(DecodeError::BadVersion(3).to_string(), "unsupported protocol version 3");
        assert_eq!(DecodeError::TrailingBytes(2).to_string(), "2 trailing bytes after message");
    }
}
