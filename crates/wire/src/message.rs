//! Protocol message definitions.

/// Identity of a protocol participant (Triad node or Time Authority).
///
/// In the paper's experiments Nodes 1, 2 and 3 carry ids 1–3; the Time
/// Authority conventionally uses [`NodeId::TIME_AUTHORITY`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u16);

impl NodeId {
    /// Conventional id of the Time Authority endpoint.
    pub const TIME_AUTHORITY: NodeId = NodeId(0);

    /// True for the Time Authority id.
    pub fn is_time_authority(self) -> bool {
        self == Self::TIME_AUTHORITY
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.is_time_authority() {
            write!(f, "TA")
        } else {
            write!(f, "node{}", self.0)
        }
    }
}

/// A degraded-mode timestamp: a best-effort estimate plus an explicit
/// self-assessed uncertainty half-width.
///
/// While a node is Tainted or cut off from the TA it keeps serving
/// monotonic estimates, but the uncertainty widens with staleness; after a
/// successful recalibration it collapses back to the node's base bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeReading {
    /// Monotonic best-effort timestamp (ns of reference time).
    pub estimate_ns: u64,
    /// Half-width of the node's confidence interval around the estimate.
    pub uncertainty_ns: u64,
    /// True when the node served this reading outside its OK state
    /// (tainted, recalibrating, or TA-partitioned).
    pub degraded: bool,
}

/// Every message of the Triad protocol and its hardened extension.
///
/// Timestamps are nanoseconds of reference time; `nonce` fields match a
/// response to its outstanding request. The message carries no sender
/// identity — authenticity comes from the per-pair AEAD session key, and
/// the simulated network's envelope carries addressing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Message {
    /// Node → TA: calibration probe. The TA waits `sleep_ns` of reference
    /// time before answering; the node measures the TSC increment across
    /// the round-trip (§III-C of the paper).
    CalibrationRequest {
        /// Request/response correlation value.
        nonce: u64,
        /// Requested TA hold time (`s` in the paper), in nanoseconds.
        sleep_ns: u64,
    },
    /// TA → node: answer to [`Message::CalibrationRequest`], sent after the
    /// requested hold.
    CalibrationResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// TA reference clock at the instant the response was sent.
        ta_time_ns: u64,
        /// The hold the TA actually applied (equals the requested sleep).
        slept_ns: u64,
    },
    /// Node → peer: request for an untainting timestamp after an AEX
    /// (§III-D).
    PeerTimeRequest {
        /// Request/response correlation value.
        nonce: u64,
    },
    /// Peer → node: a fresh timestamp. Only sent by peers that are not
    /// themselves tainted; in the base protocol tainted peers stay silent.
    PeerTimeResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// The peer's current trusted timestamp.
        timestamp_ns: u64,
    },
    /// Client → node: application asking for a trusted timestamp.
    ClientTimeRequest {
        /// Request/response correlation value.
        nonce: u64,
    },
    /// Node → client: the serving answer; `None` while the node is tainted
    /// or calibrating (unavailable, §IV-A.2).
    ClientTimeResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// Monotonic trusted timestamp, absent while unavailable.
        timestamp_ns: Option<u64>,
    },
    /// Node → peer (hardened protocol): request for a timestamp *interval*
    /// `t ± e` instead of a bare timestamp (§V true-chimer filtering).
    IntervalRequest {
        /// Request/response correlation value.
        nonce: u64,
    },
    /// Peer → node (hardened protocol): timestamp with a self-assessed
    /// error bound, answered even when tainted so peers can judge quality.
    IntervalResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// The peer's current timestamp.
        timestamp_ns: u64,
        /// Half-width of the peer's confidence interval.
        error_bound_ns: u64,
        /// Whether the peer currently considers itself tainted.
        tainted: bool,
    },
    /// Node → cluster (hardened protocol): the set of peers this node
    /// currently considers true-chimers, published per epoch (§V).
    ChimerAnnouncement {
        /// Monotonic epoch counter of the announcing node.
        epoch: u64,
        /// Ids the announcer deems consistent with its own clock.
        chimers: Vec<NodeId>,
    },
    /// Client → node (hardened protocol): request for a degraded-tolerant
    /// [`TimeReading`] instead of an all-or-nothing timestamp.
    TimeReadingRequest {
        /// Request/response correlation value.
        nonce: u64,
    },
    /// Node → client (hardened protocol): a monotonic estimate with an
    /// explicit uncertainty bound; `None` only before the first
    /// calibration ever completed (no estimate exists at all).
    TimeReadingResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// The reading, absent only while no clock estimate exists.
        reading: Option<TimeReading>,
    },
    /// Client → serving front-end: a timestamp request routed through the
    /// serving layer (admission queue + batching) rather than straight at
    /// a protocol node.
    ServeRequest {
        /// Request/response correlation value (also the retry dedup key:
        /// a failover resend carries the same nonce).
        nonce: u64,
        /// True when the client accepts a degraded [`TimeReading`] while
        /// the node is outside its OK state; false demands a fresh
        /// timestamp or nothing.
        accept_degraded: bool,
    },
    /// Serving front-end → client: the admission/batching outcome of a
    /// [`Message::ServeRequest`].
    ServeResponse {
        /// Echo of the request nonce.
        nonce: u64,
        /// What the front-end could do for the request.
        outcome: ServeOutcome,
    },
    /// Quorum client → serving front-end: one leg of a fanned-out quorum
    /// read. Every panel member receives the same nonce; the quorum layer
    /// cross-checks the returned intervals instead of trusting any single
    /// node's answer.
    AttestRequest {
        /// Read correlation value, shared by the whole panel.
        nonce: u64,
    },
    /// Serving front-end → quorum client: this node's sealed timestamp
    /// attestation — always an interval, never a bare timestamp, so the
    /// quorum layer can run interval-overlap agreement on it.
    AttestResponse {
        /// Echo of the read nonce.
        nonce: u64,
        /// The attestation, or why the node could not produce one.
        outcome: AttestOutcome,
    },
}

/// The serving front-end's answer to one admitted (or rejected) request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServeOutcome {
    /// A fresh trusted timestamp (ns) served while the node is OK.
    Time(u64),
    /// A degraded-mode reading (node tainted/recalibrating), only sent to
    /// clients that set `accept_degraded`.
    Reading(TimeReading),
    /// The admission queue was full; the client should back off or fail
    /// over to another node.
    Overloaded,
    /// The node cannot serve (never calibrated, or degraded and the client
    /// refused degraded readings).
    Unavailable,
}

/// The serving front-end's answer to one quorum attestation request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttestOutcome {
    /// The node's current clock estimate with its self-assessed
    /// uncertainty half-width. Degraded nodes still attest (with a widened
    /// interval); the quorum layer, not the node, decides trust.
    Attestation(TimeReading),
    /// The admission queue was full; the sample is missing from the panel.
    Overloaded,
    /// The node has no clock estimate at all (never calibrated).
    Unavailable,
}

impl Message {
    /// Short human-readable kind tag (stable; used in traces and tests).
    pub fn kind(&self) -> &'static str {
        match self {
            Message::CalibrationRequest { .. } => "calib_req",
            Message::CalibrationResponse { .. } => "calib_resp",
            Message::PeerTimeRequest { .. } => "peer_req",
            Message::PeerTimeResponse { .. } => "peer_resp",
            Message::ClientTimeRequest { .. } => "client_req",
            Message::ClientTimeResponse { .. } => "client_resp",
            Message::IntervalRequest { .. } => "interval_req",
            Message::IntervalResponse { .. } => "interval_resp",
            Message::ChimerAnnouncement { .. } => "chimer_announce",
            Message::TimeReadingRequest { .. } => "reading_req",
            Message::TimeReadingResponse { .. } => "reading_resp",
            Message::ServeRequest { .. } => "serve_req",
            Message::ServeResponse { .. } => "serve_resp",
            Message::AttestRequest { .. } => "attest_req",
            Message::AttestResponse { .. } => "attest_resp",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_display() {
        assert_eq!(NodeId::TIME_AUTHORITY.to_string(), "TA");
        assert_eq!(NodeId(3).to_string(), "node3");
        assert!(NodeId(0).is_time_authority());
        assert!(!NodeId(1).is_time_authority());
    }

    #[test]
    fn kinds_are_distinct() {
        let msgs = [
            Message::CalibrationRequest { nonce: 0, sleep_ns: 0 },
            Message::CalibrationResponse { nonce: 0, ta_time_ns: 0, slept_ns: 0 },
            Message::PeerTimeRequest { nonce: 0 },
            Message::PeerTimeResponse { nonce: 0, timestamp_ns: 0 },
            Message::ClientTimeRequest { nonce: 0 },
            Message::ClientTimeResponse { nonce: 0, timestamp_ns: None },
            Message::IntervalRequest { nonce: 0 },
            Message::IntervalResponse {
                nonce: 0,
                timestamp_ns: 0,
                error_bound_ns: 0,
                tainted: false,
            },
            Message::ChimerAnnouncement { epoch: 0, chimers: vec![] },
            Message::TimeReadingRequest { nonce: 0 },
            Message::TimeReadingResponse { nonce: 0, reading: None },
            Message::ServeRequest { nonce: 0, accept_degraded: false },
            Message::ServeResponse { nonce: 0, outcome: ServeOutcome::Overloaded },
            Message::AttestRequest { nonce: 0 },
            Message::AttestResponse { nonce: 0, outcome: AttestOutcome::Unavailable },
        ];
        let mut kinds: Vec<_> = msgs.iter().map(|m| m.kind()).collect();
        kinds.sort_unstable();
        kinds.dedup();
        assert_eq!(kinds.len(), msgs.len());
    }
}
