//! Property-based round-trip tests for the wire codec.

use proptest::prelude::*;
use wire::{AttestOutcome, Message, NodeId, ServeOutcome, TimeReading};

fn arb_reading() -> impl Strategy<Value = TimeReading> {
    (any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
        |(estimate_ns, uncertainty_ns, degraded)| TimeReading {
            estimate_ns,
            uncertainty_ns,
            degraded,
        },
    )
}

fn arb_serve_outcome() -> impl Strategy<Value = ServeOutcome> {
    prop_oneof![
        any::<u64>().prop_map(ServeOutcome::Time),
        arb_reading().prop_map(ServeOutcome::Reading),
        Just(ServeOutcome::Overloaded),
        Just(ServeOutcome::Unavailable),
    ]
}

fn arb_attest_outcome() -> impl Strategy<Value = AttestOutcome> {
    prop_oneof![
        arb_reading().prop_map(AttestOutcome::Attestation),
        Just(AttestOutcome::Overloaded),
        Just(AttestOutcome::Unavailable),
    ]
}

fn arb_message() -> impl Strategy<Value = Message> {
    prop_oneof![
        (any::<u64>(), any::<u64>())
            .prop_map(|(nonce, sleep_ns)| Message::CalibrationRequest { nonce, sleep_ns }),
        (any::<u64>(), any::<u64>(), any::<u64>()).prop_map(|(nonce, ta_time_ns, slept_ns)| {
            Message::CalibrationResponse { nonce, ta_time_ns, slept_ns }
        }),
        any::<u64>().prop_map(|nonce| Message::PeerTimeRequest { nonce }),
        (any::<u64>(), any::<u64>())
            .prop_map(|(nonce, timestamp_ns)| Message::PeerTimeResponse { nonce, timestamp_ns }),
        any::<u64>().prop_map(|nonce| Message::ClientTimeRequest { nonce }),
        (any::<u64>(), proptest::option::of(any::<u64>()))
            .prop_map(|(nonce, timestamp_ns)| Message::ClientTimeResponse { nonce, timestamp_ns }),
        any::<u64>().prop_map(|nonce| Message::IntervalRequest { nonce }),
        (any::<u64>(), any::<u64>(), any::<u64>(), any::<bool>()).prop_map(
            |(nonce, timestamp_ns, error_bound_ns, tainted)| Message::IntervalResponse {
                nonce,
                timestamp_ns,
                error_bound_ns,
                tainted
            }
        ),
        (any::<u64>(), proptest::collection::vec(any::<u16>(), 0..20)).prop_map(|(epoch, ids)| {
            Message::ChimerAnnouncement { epoch, chimers: ids.into_iter().map(NodeId).collect() }
        }),
        any::<u64>().prop_map(|nonce| Message::TimeReadingRequest { nonce }),
        (any::<u64>(), proptest::option::of(arb_reading()))
            .prop_map(|(nonce, reading)| Message::TimeReadingResponse { nonce, reading }),
        (any::<u64>(), any::<bool>()).prop_map(|(nonce, accept_degraded)| {
            Message::ServeRequest { nonce, accept_degraded }
        }),
        (any::<u64>(), arb_serve_outcome())
            .prop_map(|(nonce, outcome)| Message::ServeResponse { nonce, outcome }),
        any::<u64>().prop_map(|nonce| Message::AttestRequest { nonce }),
        (any::<u64>(), arb_attest_outcome())
            .prop_map(|(nonce, outcome)| Message::AttestResponse { nonce, outcome }),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trips(msg in arb_message()) {
        let encoded = msg.encode();
        prop_assert_eq!(Message::decode(&encoded), Ok(msg));
    }

    #[test]
    fn decode_never_panics_on_garbage(data in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Message::decode(&data);
    }

    #[test]
    fn truncated_encodings_never_decode_to_ok(msg in arb_message(), cut_fraction in 0.0..1.0f64) {
        let encoded = msg.encode();
        let cut = ((encoded.len() as f64) * cut_fraction) as usize;
        if cut < encoded.len() {
            prop_assert!(Message::decode(&encoded[..cut]).is_err());
        }
    }
}
